// Macrobenchmark of the fused query engine: one sharded scan answering a
// thirteen-query batch (two crosstabs, two weighted crosstabs, option and
// category shares, weighted shares, a numeric summary, two group-answered
// counts — the shape of the study's per-wave batch) vs.
// the sequential per-query builders it replaced (query::reference, one full
// table scan each, weight column re-resolved by name per row, multi-select
// cells probed option by option). Emits a JSON report (stdout, or --out
// FILE) so CI can keep a machine-readable baseline; the acceptance bar is
// fused >= 3x the sequential baseline on the 1M-row default batch.
//
// Both paths produce the same numbers — the report carries a "verified"
// flag (near-equality; shard reassociation may move fractional weighted
// sums by ulps) and a bit-folded checksum of the fused results. A second
// gate, "simd_verified", is strict: the engine's SIMD kernels must
// reproduce the forced-scalar result bits exactly at every pool size
// (serial, 1, 2, 8), or the process exits 2. The report also breaks the
// batch down per query kind ("per_query": each kind re-run alone on the
// engine) and records the dispatched SIMD ISA ("simd").
#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "data/crosstab.hpp"
#include "data/table.hpp"
#include "parallel/thread_pool.hpp"
#include "query/engine.hpp"
#include "query/reference.hpp"
#include "simd/dispatch.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace {

std::uint64_t g_sink = 0;  // folded results, so the optimizer keeps the work

void fold(double v) {
  std::uint64_t b = 0;
  std::memcpy(&b, &v, sizeof(v));
  g_sink = g_sink * 0x9E3779B97F4A7C15ULL + b;
}

// A survey-shaped table at bench scale: two categoricals, two
// multi-selects, a numeric answer, and a full-mantissa weight column.
rcr::data::Table make_table(std::size_t rows, std::uint64_t seed) {
  std::vector<std::string> fields, careers, langs, se;
  for (int i = 0; i < 6; ++i) fields.push_back("field" + std::to_string(i));
  for (int i = 0; i < 4; ++i) careers.push_back("career" + std::to_string(i));
  for (int i = 0; i < 12; ++i) langs.push_back("lang" + std::to_string(i));
  for (int i = 0; i < 8; ++i) se.push_back("se" + std::to_string(i));

  rcr::data::Table t;
  auto& field = t.add_categorical("field", fields);
  auto& career = t.add_categorical("career", careers);
  auto& lang_col = t.add_multiselect("langs", langs);
  auto& se_col = t.add_multiselect("se", se);
  auto& score = t.add_numeric("score");
  auto& w = t.add_numeric("w");

  rcr::Rng rng(seed);
  for (std::size_t i = 0; i < rows; ++i) {
    if (rng.next_double() < 0.08) field.push_missing();
    else field.push_code(static_cast<std::int32_t>(rng.next_below(6)));
    if (rng.next_double() < 0.05) career.push_missing();
    else career.push_code(static_cast<std::int32_t>(rng.next_below(4)));
    // Sparse selections, like real "check all that apply" answers: the
    // AND of two draws averages ~3 of 12 languages, ~2 of 8 practices.
    if (rng.next_double() < 0.10) lang_col.push_missing();
    else lang_col.push_mask(rng.next_u64() & rng.next_u64() & 0xFFFULL);
    if (rng.next_double() < 0.12) se_col.push_missing();
    else se_col.push_mask(rng.next_u64() & rng.next_u64() & 0xFFULL);
    if (rng.next_double() < 0.07) score.push_missing();
    else score.push(rng.normal() * 12.0 + 40.0);
    if (rng.next_double() < 0.04) w.push_missing();
    else w.push(rng.next_double() * 2.0 + 0.25);
  }
  return t;
}

double best_of(int runs, const auto& pass) {
  double best = 1e300;
  for (int r = 0; r < runs; ++r) {
    rcr::Stopwatch sw;
    pass();
    best = std::min(best, sw.elapsed_seconds());
  }
  return best;
}

// Everything the batch computes, in one comparable bundle.
struct BatchResults {
  rcr::data::LabeledCrosstab ct_career, ct_career_w, ct_langs, ct_se_w;
  std::vector<rcr::data::OptionShare> langs, se, careers;
  std::vector<rcr::data::OptionShare> weighted;  // the F9-style battery
  rcr::query::NumericSummary score;
  std::vector<double> answered_langs, answered_se;
};

// (column, option) pairs of the weighted-share battery (F9-style).
constexpr std::pair<const char*, const char*> kWeightedBattery[] = {
    {"langs", "lang0"}, {"se", "se1"},
};

void fold_results(const BatchResults& r) {
  for (const auto* ct : {&r.ct_career, &r.ct_career_w, &r.ct_langs, &r.ct_se_w})
    for (std::size_t i = 0; i < ct->counts.rows(); ++i)
      for (std::size_t j = 0; j < ct->counts.cols(); ++j)
        fold(ct->counts.at(i, j));
  for (const auto* sh : {&r.langs, &r.se, &r.careers})
    for (const auto& s : *sh) {
      fold(s.count);
      fold(s.share.estimate);
    }
  for (const auto& s : r.weighted) fold(s.share.estimate);
  fold(r.score.sum);
  for (const double a : r.answered_langs) fold(a);
  for (const double a : r.answered_se) fold(a);
}

bool near(double a, double b) {
  return std::abs(a - b) <= 1e-9 * (1.0 + std::max(std::abs(a), std::abs(b)));
}

// Bit-exact fingerprint of a batch — the SIMD gate compares these, not
// near-equality: vector kernels must reproduce the scalar bits.
std::uint64_t fingerprint_results(const BatchResults& r) {
  std::uint64_t fp = 0;
  const auto fold1 = [&](double v) {
    std::uint64_t b = 0;
    std::memcpy(&b, &v, sizeof(v));
    fp = fp * 0x9E3779B97F4A7C15ULL + b;
  };
  for (const auto* ct : {&r.ct_career, &r.ct_career_w, &r.ct_langs, &r.ct_se_w})
    for (std::size_t i = 0; i < ct->counts.rows(); ++i)
      for (std::size_t j = 0; j < ct->counts.cols(); ++j)
        fold1(ct->counts.at(i, j));
  for (const auto* sh : {&r.langs, &r.se, &r.careers})
    for (const auto& s : *sh) {
      fold1(s.count);
      fold1(s.share.estimate);
    }
  for (const auto& s : r.weighted) fold1(s.share.estimate);
  fold1(r.score.sum);
  for (const double a : r.answered_langs) fold1(a);
  for (const double a : r.answered_se) fold1(a);
  return fp;
}

bool same_results(const BatchResults& a, const BatchResults& b) {
  bool ok = true;
  const auto cmp_ct = [&](const rcr::data::LabeledCrosstab& x,
                          const rcr::data::LabeledCrosstab& y) {
    for (std::size_t i = 0; i < x.counts.rows(); ++i)
      for (std::size_t j = 0; j < x.counts.cols(); ++j)
        ok = ok && near(x.counts.at(i, j), y.counts.at(i, j));
  };
  cmp_ct(a.ct_career, b.ct_career);
  cmp_ct(a.ct_career_w, b.ct_career_w);
  cmp_ct(a.ct_langs, b.ct_langs);
  cmp_ct(a.ct_se_w, b.ct_se_w);
  for (std::size_t i = 0; i < a.langs.size(); ++i)
    ok = ok && near(a.langs[i].count, b.langs[i].count);
  for (std::size_t i = 0; i < a.se.size(); ++i)
    ok = ok && near(a.se[i].count, b.se[i].count);
  for (std::size_t i = 0; i < a.careers.size(); ++i)
    ok = ok && near(a.careers[i].count, b.careers[i].count);
  for (std::size_t i = 0; i < a.weighted.size(); ++i)
    ok = ok && near(a.weighted[i].share.estimate, b.weighted[i].share.estimate);
  ok = ok && near(a.score.sum, b.score.sum) && a.score.count == b.score.count;
  for (std::size_t g = 0; g < a.answered_langs.size(); ++g)
    ok = ok && a.answered_langs[g] == b.answered_langs[g];
  for (std::size_t g = 0; g < a.answered_se.size(); ++g)
    ok = ok && a.answered_se[g] == b.answered_se[g];
  return ok;
}

// The pre-engine execution plan: eleven separate full-table scans (the
// reference builders keep the per-row weight-name lookup and per-option
// probing the direct data:: calls used to do), plus the hand-rolled walks
// the experiments used for numeric summaries and per-group denominators.
BatchResults run_naive(const rcr::data::Table& t,
                       const std::vector<double>& ext) {
  namespace ref = rcr::query::reference;
  const std::optional<std::string> by_w{"w"};
  BatchResults r;
  r.ct_career = ref::crosstab(t, "field", "career");
  r.ct_career_w = ref::crosstab(t, "field", "career", by_w);
  r.ct_langs = ref::crosstab_multiselect(t, "field", "langs");
  r.ct_se_w = ref::crosstab_multiselect(t, "field", "se", by_w);
  r.langs = ref::option_shares(t, "langs");
  r.se = ref::option_shares(t, "se");
  r.careers = ref::category_shares(t, "career");
  for (const auto& [column, option] : kWeightedBattery)
    r.weighted.push_back(ref::weighted_option_share(t, column, option, ext));

  const auto& score = t.numeric("score");
  r.score.min = rcr::data::NumericColumn::missing();
  r.score.max = rcr::data::NumericColumn::missing();
  for (std::size_t i = 0; i < score.size(); ++i) {
    const double v = score.at(i);
    if (rcr::data::NumericColumn::is_missing(v)) continue;
    if (r.score.count == 0.0) {
      r.score.min = v;
      r.score.max = v;
    }
    r.score.count += 1.0;
    r.score.sum += v;
    r.score.min = std::min(r.score.min, v);
    r.score.max = std::max(r.score.max, v);
  }

  // Per-group answered denominators, the way the tables used to build
  // them: a group_rows() walk per multi-select column.
  const auto count_answered = [&](const char* column) {
    const auto groups = t.group_rows("field");
    const auto& col = t.multiselect(column);
    std::vector<double> answered(groups.size(), 0.0);
    for (std::size_t g = 0; g < groups.size(); ++g)
      for (const std::size_t row : groups[g])
        if (!col.is_missing(row)) answered[g] += 1.0;
    return answered;
  };
  r.answered_langs = count_answered("langs");
  r.answered_se = count_answered("se");
  return r;
}

BatchResults run_fused(const rcr::data::Table& t,
                       const std::vector<double>& ext,
                       rcr::parallel::ThreadPool* pool) {
  const std::optional<std::string> by_w{"w"};
  rcr::query::QueryEngine engine(t);
  const auto ct_career = engine.add_crosstab("field", "career");
  const auto ct_career_w = engine.add_crosstab("field", "career", by_w);
  const auto ct_langs = engine.add_crosstab_multiselect("field", "langs");
  const auto ct_se_w = engine.add_crosstab_multiselect("field", "se", by_w);
  const auto sh_langs = engine.add_option_shares("langs");
  const auto sh_se = engine.add_option_shares("se");
  const auto sh_career = engine.add_category_shares("career");
  std::vector<rcr::query::QueryId> battery;
  for (const auto& [column, option] : kWeightedBattery)
    battery.push_back(engine.add_weighted_option_share(column, option, ext));
  const auto ns = engine.add_numeric_summary("score");
  const auto ans_langs = engine.add_group_answered("field", "langs");
  const auto ans_se = engine.add_group_answered("field", "se");
  engine.run(pool);

  BatchResults r;
  r.ct_career = engine.crosstab(ct_career);
  r.ct_career_w = engine.crosstab(ct_career_w);
  r.ct_langs = engine.crosstab(ct_langs);
  r.ct_se_w = engine.crosstab(ct_se_w);
  r.langs = engine.shares(sh_langs);
  r.se = engine.shares(sh_se);
  r.careers = engine.shares(sh_career);
  for (const auto id : battery) r.weighted.push_back(engine.weighted_share(id));
  r.score = engine.numeric(ns);
  r.answered_langs = engine.group_answered(ans_langs);
  r.answered_se = engine.group_answered(ans_se);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t rows = 1000000;
  std::size_t threads = 8;
  std::uint64_t seed = 42;
  const char* out_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--rows") == 0 && i + 1 < argc)
      rows = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
      threads = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc)
      seed = std::strtoull(argv[++i], nullptr, 10);
    else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out_path = argv[++i];
  }
  const std::string simd = rcr::simd::describe();
  std::fprintf(stderr,
               "bench_micro_query: seed=%llu threads=%zu rows=%zu simd=%s\n",
               static_cast<unsigned long long>(seed), threads, rows,
               simd.c_str());

  const rcr::data::Table t = make_table(rows, seed);
  std::vector<double> ext(rows);
  rcr::Rng wrng(seed ^ 0x5DEECE66DULL);
  for (double& v : ext) v = wrng.next_double() * 2.0 + 0.1;

  rcr::parallel::ThreadPool pool(threads == 0 ? 1 : threads);
  rcr::parallel::ThreadPool* pool_ptr = threads == 0 ? nullptr : &pool;

  BatchResults naive_res, fused_res, serial_res;
  const double naive_s =
      best_of(3, [&] { naive_res = run_naive(t, ext); });
  const double fused_s =
      best_of(3, [&] { fused_res = run_fused(t, ext, pool_ptr); });
  const double fused_serial_s =
      best_of(3, [&] { serial_res = run_fused(t, ext, nullptr); });

  const bool verified = same_results(naive_res, fused_res) &&
                        same_results(naive_res, serial_res);
  fold_results(fused_res);

  // SIMD gate: the vectorized kernels must reproduce the forced-scalar
  // bits exactly, at every pool size. A mismatch fails the run (exit 2).
  rcr::simd::force_isa(rcr::simd::Isa::kScalar);
  const std::uint64_t simd_ref = fingerprint_results(run_fused(t, ext, nullptr));
  rcr::simd::clear_isa_override();
  bool simd_verified = true;
  for (const std::size_t vthreads : {0u, 1u, 2u, 8u}) {
    rcr::parallel::ThreadPool vpool(vthreads == 0 ? 1 : vthreads);
    rcr::parallel::ThreadPool* vp = vthreads == 0 ? nullptr : &vpool;
    if (fingerprint_results(run_fused(t, ext, vp)) != simd_ref) {
      std::fprintf(stderr,
                   "micro_query: simd fingerprint mismatch at threads=%zu\n",
                   vthreads);
      simd_verified = false;
    }
  }

  // Per-kind timings: the batch re-run one query kind at a time, so the
  // report shows where the fused scan's time goes. (The kinds share the
  // scan, so these do not sum to the fused total — each pays the full
  // row walk.)
  struct KindTiming {
    const char* name;
    double seconds;
  };
  std::vector<KindTiming> kinds;
  const auto time_kind = [&](const char* name, auto&& add_queries) {
    kinds.push_back({name, best_of(3, [&] {
                       rcr::query::QueryEngine engine(t);
                       add_queries(engine);
                       engine.run(pool_ptr);
                     })});
  };
  const std::optional<std::string> by_w{"w"};
  time_kind("crosstab", [&](auto& e) { e.add_crosstab("field", "career"); });
  time_kind("crosstab_weighted",
            [&](auto& e) { e.add_crosstab("field", "career", by_w); });
  time_kind("crosstab_multiselect",
            [&](auto& e) { e.add_crosstab_multiselect("field", "langs"); });
  time_kind("crosstab_multiselect_weighted",
            [&](auto& e) { e.add_crosstab_multiselect("field", "se", by_w); });
  time_kind("option_shares", [&](auto& e) {
    e.add_option_shares("langs");
    e.add_option_shares("se");
  });
  time_kind("category_shares",
            [&](auto& e) { e.add_category_shares("career"); });
  time_kind("weighted_option_share", [&](auto& e) {
    for (const auto& [column, option] : kWeightedBattery)
      e.add_weighted_option_share(column, option, ext);
  });
  time_kind("numeric_summary",
            [&](auto& e) { e.add_numeric_summary("score"); });
  time_kind("group_answered", [&](auto& e) {
    e.add_group_answered("field", "langs");
    e.add_group_answered("field", "se");
  });

  const double queries = 13.0;
  char buf[1024];
  std::string json = "{\n  \"benchmark\": \"micro_query\",\n";
  std::snprintf(buf, sizeof buf,
                "  \"simd\": \"%s\",\n"
                "  \"rows\": %zu,\n  \"threads\": %zu,\n"
                "  \"queries\": %.0f,\n  \"results\": [\n",
                simd.c_str(), rows, threads, queries);
  json += buf;
  const struct {
    const char* name;
    double seconds;
  } lines[] = {
      {"naive.sequential_scans", naive_s},
      {"fused.engine", fused_s},
      {"fused.engine_serial", fused_serial_s},
  };
  for (std::size_t i = 0; i < std::size(lines); ++i) {
    std::snprintf(buf, sizeof buf,
                  "    {\"name\": \"%s\", \"ms\": %.2f, "
                  "\"rows_per_sec\": %.3e}%s\n",
                  lines[i].name, lines[i].seconds * 1e3,
                  static_cast<double>(rows) * queries / lines[i].seconds,
                  i + 1 < std::size(lines) ? "," : "");
    json += buf;
  }
  json += "  ],\n  \"per_query\": [\n";
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    std::snprintf(buf, sizeof buf, "    {\"name\": \"%s\", \"ms\": %.2f}%s\n",
                  kinds[i].name, kinds[i].seconds * 1e3,
                  i + 1 < kinds.size() ? "," : "");
    json += buf;
  }
  std::snprintf(buf, sizeof buf,
                "  ],\n  \"speedups\": {\n"
                "    \"fused_vs_naive\": %.2f,\n"
                "    \"fused_serial_vs_naive\": %.2f\n  },\n"
                "  \"verified\": %s,\n  \"simd_verified\": %s,\n"
                "  \"checksum\": %llu\n}\n",
                naive_s / fused_s, naive_s / fused_serial_s,
                verified ? "true" : "false",
                simd_verified ? "true" : "false",
                static_cast<unsigned long long>(g_sink % 1000000007ULL));
  json += buf;

  if (out_path != nullptr) {
    std::FILE* f = std::fopen(out_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "micro_query: cannot open %s\n", out_path);
      return 1;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
  }
  std::fputs(json.c_str(), stdout);
  return verified && simd_verified ? 0 : 2;
}
