// Regenerates experiment F4 of the reconstructed evaluation (DESIGN.md).
#include "bench/experiment_main.hpp"

int main(int argc, char** argv) {
  return rcr::bench::run_experiment("F4", argc, argv);
}
