// Microbenchmark of the sketch ingest paths: per-observation cost of each
// rcr::stream accumulator plus the cost of a shard merge. Emits a JSON
// report (stdout, or --out FILE); BENCH_stream.json pins the reference
// numbers for the committed baseline machine.
//
// Inputs are pre-drawn into L1/L2-resident buffers so the numbers measure
// sketch update cost, not RNG or memory throughput.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "simd/dispatch.hpp"
#include "stream/sketch.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace {

constexpr std::size_t kBuf = 4096;  // 32 KiB of doubles per pass

std::uint64_t g_sink = 0;

struct Result {
  std::string name;
  double ns_per_op = 0.0;
  double ops_per_sec = 0.0;
};

// Same calibration scheme as micro_rng: target ~100 ms per timed run,
// report the best of three.
template <typename Pass>
Result run_bench(const std::string& name, std::size_t ops_per_pass,
                 Pass&& pass) {
  std::size_t reps = 1;
  for (;;) {
    rcr::Stopwatch w;
    for (std::size_t r = 0; r < reps; ++r) pass();
    const double s = w.elapsed_seconds();
    if (s >= 0.01 || reps >= (std::size_t{1} << 30)) {
      reps = std::max<std::size_t>(
          1, static_cast<std::size_t>(static_cast<double>(reps) * 0.1 /
                                      std::max(s, 1e-9)));
      break;
    }
    reps *= 4;
  }

  double best = 1e300;
  for (int run = 0; run < 3; ++run) {
    rcr::Stopwatch w;
    for (std::size_t r = 0; r < reps; ++r) pass();
    best = std::min(best, w.elapsed_seconds());
  }
  const double total =
      static_cast<double>(reps) * static_cast<double>(ops_per_pass);
  Result res;
  res.name = name;
  res.ns_per_op = best * 1e9 / total;
  res.ops_per_sec = total / best;
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out_path = argv[++i];
  }
  const std::string simd = rcr::simd::describe();
  std::fprintf(stderr, "bench_micro_stream: seed=42 threads=1 simd=%s\n",
               simd.c_str());

  rcr::Rng rng(42);
  std::vector<double> values(kBuf);
  std::vector<std::uint64_t> keys(kBuf);
  for (double& v : values) v = rng.uniform(0.0, 1000.0);
  // ~256 distinct keys: the label-cell cardinality the survey pipeline sees.
  for (std::uint64_t& k : keys) k = rcr::stream::mix64(rng.next_below(256));

  std::vector<Result> results;

  {
    rcr::stream::Moments m;
    results.push_back(run_bench("moments.add", kBuf, [&] {
      for (double v : values) m.add(v);
      g_sink += m.count();
    }));
  }
  {
    rcr::stream::GKQuantile q(0.005);
    results.push_back(run_bench("gk.add", kBuf, [&] {
      for (double v : values) q.add(v);
      g_sink += q.tuple_count();
    }));
  }
  {
    rcr::stream::CountMinSketch cms(4, 2048, 42);
    results.push_back(run_bench("cms.add", kBuf, [&] {
      for (std::uint64_t k : keys) cms.add(k);
      g_sink += static_cast<std::uint64_t>(cms.total_weight());
    }));
    results.push_back(run_bench("cms.estimate", kBuf, [&] {
      double acc = 0.0;
      for (std::uint64_t k : keys) acc += cms.estimate(k);
      g_sink += static_cast<std::uint64_t>(acc);
    }));
  }
  {
    rcr::stream::HyperLogLog hll(12, 42);
    std::uint64_t salt = 0;
    results.push_back(run_bench("hll.add", kBuf, [&] {
      // Fresh keys each pass so register updates stay realistic.
      ++salt;
      for (std::uint64_t k : keys)
        hll.add(rcr::stream::mix64(k ^ salt));
      g_sink += static_cast<std::uint64_t>(hll.estimate());
    }));
  }
  {
    rcr::stream::SpaceSaving ss(64);
    std::vector<std::string> labels(256);
    for (std::size_t i = 0; i < labels.size(); ++i)
      labels[i] = "label_" + std::to_string(i);
    results.push_back(run_bench("space_saving.add", kBuf, [&] {
      for (std::uint64_t k : keys) ss.add(labels[k & 255]);
      g_sink += ss.tracked();
    }));
  }
  {
    rcr::stream::WeightedReservoir res(64, 42);
    std::uint64_t index = 0;
    results.push_back(run_bench("reservoir.offer", kBuf, [&] {
      for (double v : values) res.offer(index++, v);
      g_sink += res.items().size();
    }));
  }
  {
    // One shard merge: two 64k-row GK summaries folded together.
    rcr::stream::GKQuantile base(0.005);
    for (std::size_t i = 0; i < 65536; ++i)
      base.add(values[i & (kBuf - 1)] + static_cast<double>(i) * 1e-7);
    results.push_back(run_bench("gk.merge_64k", 1, [&] {
      rcr::stream::GKQuantile a = base;
      a.merge(base);
      g_sink += a.tuple_count();
    }));
  }

  std::string json = "{\n  \"benchmark\": \"micro_stream\",\n  \"simd\": \"" +
                     simd + "\",\n  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    char line[256];
    std::snprintf(line, sizeof line,
                  "    {\"name\": \"%s\", \"ns_per_op\": %.4f, "
                  "\"ops_per_sec\": %.3e}%s\n",
                  results[i].name.c_str(), results[i].ns_per_op,
                  results[i].ops_per_sec,
                  i + 1 < results.size() ? "," : "");
    json += line;
  }
  char tail[64];
  std::snprintf(tail, sizeof tail,
                "  ],\n  \"checksum\": %llu\n}\n",
                static_cast<unsigned long long>(g_sink % 1000000007ULL));
  json += tail;

  if (out_path != nullptr) {
    std::FILE* f = std::fopen(out_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "micro_stream: cannot open %s\n", out_path);
      return 1;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
  }
  std::fputs(json.c_str(), stdout);
  return 0;
}
