// Microbenchmark of the rcr::simd kernels: each vector entry point timed
// at the forced scalar (width-1) path and at the native width the dispatch
// picks, so the report carries per-kernel SIMD speedups. Before timing,
// the run proves the bitwise contract on a query-engine batch: the fused
// engine's result fingerprint at the native width must equal the forced
// scalar fingerprint for the serial walk and pools of 1, 2 and 8 threads —
// any mismatch makes the process exit 2, so CI can never record a number
// produced by a kernel that drifted from its scalar reference.
//
// Emits a JSON report (stdout, or --out FILE); BENCH_simd.json keeps the
// checked-in baseline.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "data/table.hpp"
#include "parallel/thread_pool.hpp"
#include "query/engine.hpp"
#include "simd/dispatch.hpp"
#include "simd/kernels.hpp"
#include "simd/philox.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace {

std::uint64_t g_sink = 0;

// Times `pass` (one pass = `items` units): calibrates a repeat count
// targeting ~100 ms, then reports the best-of-three ns per unit.
template <typename Pass>
double bench_ns_per_item(std::size_t items, Pass&& pass) {
  std::size_t reps = 1;
  for (;;) {
    rcr::Stopwatch w;
    for (std::size_t r = 0; r < reps; ++r) pass();
    const double s = w.elapsed_seconds();
    if (s >= 0.01 || reps >= (std::size_t{1} << 30)) {
      reps = std::max<std::size_t>(
          1, static_cast<std::size_t>(static_cast<double>(reps) * 0.1 /
                                      std::max(s, 1e-9)));
      break;
    }
    reps *= 4;
  }
  double best = 1e300;
  for (int run = 0; run < 3; ++run) {
    rcr::Stopwatch w;
    for (std::size_t r = 0; r < reps; ++r) pass();
    best = std::min(best, w.elapsed_seconds());
  }
  return best * 1e9 /
         (static_cast<double>(reps) * static_cast<double>(items));
}

struct Row {
  std::string name;
  double scalar_ns = 0.0;  // forced width-1
  double simd_ns = 0.0;    // native width
};

// Runs `pass` under the forced scalar path and under the native dispatch.
template <typename Pass>
Row bench_both(const std::string& name, std::size_t items, Pass&& pass) {
  Row row;
  row.name = name;
  rcr::simd::force_isa(rcr::simd::Isa::kScalar);
  row.scalar_ns = bench_ns_per_item(items, pass);
  rcr::simd::clear_isa_override();
  row.simd_ns = bench_ns_per_item(items, pass);
  return row;
}

std::uint64_t bits_of(double v) {
  std::uint64_t b = 0;
  std::memcpy(&b, &v, sizeof(v));
  return b;
}

// A multi-select-heavy table: the columns whose kernels the SIMD layer
// accelerates.
rcr::data::Table make_table(std::size_t rows, std::uint64_t seed) {
  std::vector<std::string> groups, opts;
  for (int i = 0; i < 6; ++i) groups.push_back("g" + std::to_string(i));
  for (int i = 0; i < 12; ++i) opts.push_back("o" + std::to_string(i));
  rcr::data::Table t;
  auto& group = t.add_categorical("group", groups);
  auto& picks = t.add_multiselect("picks", opts);
  auto& weight = t.add_numeric("weight");
  rcr::Rng rng(seed);
  for (std::size_t i = 0; i < rows; ++i) {
    if (rng.next_double() < 0.08) group.push_missing();
    else group.push_code(static_cast<std::int32_t>(rng.next_below(6)));
    if (rng.next_double() < 0.10) picks.push_missing();
    else picks.push_mask(rng.next_u64() & rng.next_u64() & 0xFFFULL);
    weight.push(rng.next_double() * 2.0 + 0.25);
  }
  return t;
}

std::uint64_t engine_fingerprint(const rcr::data::Table& t,
                                 rcr::parallel::ThreadPool* pool) {
  rcr::query::QueryEngine engine(t);
  const auto ct = engine.add_crosstab_multiselect("group", "picks");
  const auto ctw = engine.add_crosstab_multiselect(
      "group", "picks", std::optional<std::string>{"weight"});
  const auto os = engine.add_option_shares("picks");
  engine.run(pool);

  std::uint64_t fp = 0;
  const auto fold = [&](double v) {
    fp = fp * 0x9E3779B97F4A7C15ULL + bits_of(v);
  };
  for (const auto* x : {&engine.crosstab(ct), &engine.crosstab(ctw)})
    for (std::size_t r = 0; r < x->counts.rows(); ++r)
      for (std::size_t c = 0; c < x->counts.cols(); ++c)
        fold(x->counts.at(r, c));
  for (const auto& s : engine.shares(os)) {
    fold(s.count);
    fold(s.total);
    fold(s.share.estimate);
  }
  return fp;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t rows = 1000000;
  std::uint64_t seed = 42;
  const char* out_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--rows") == 0 && i + 1 < argc)
      rows = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc)
      seed = std::strtoull(argv[++i], nullptr, 10);
    else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out_path = argv[++i];
  }
  const std::string simd = rcr::simd::describe();
  std::fprintf(stderr, "bench_micro_simd: seed=%llu rows=%zu simd=%s\n",
               static_cast<unsigned long long>(seed), rows, simd.c_str());

  // --- Bitwise verification gate -------------------------------------------
  const rcr::data::Table t = make_table(rows / 5 + 1003, seed);
  rcr::simd::force_isa(rcr::simd::Isa::kScalar);
  const std::uint64_t reference = engine_fingerprint(t, nullptr);
  bool verified = true;
  for (const std::size_t threads : {0u, 1u, 2u, 8u}) {
    rcr::parallel::ThreadPool pool(threads == 0 ? 1 : threads);
    rcr::parallel::ThreadPool* p = threads == 0 ? nullptr : &pool;
    rcr::simd::force_isa(rcr::simd::Isa::kScalar);
    const bool scalar_ok = engine_fingerprint(t, p) == reference;
    rcr::simd::clear_isa_override();
    const bool native_ok = engine_fingerprint(t, p) == reference;
    if (!scalar_ok || !native_ok) {
      std::fprintf(stderr,
                   "micro_simd: fingerprint mismatch at threads=%zu "
                   "(scalar_ok=%d native_ok=%d)\n",
                   threads, scalar_ok ? 1 : 0, native_ok ? 1 : 0);
      verified = false;
    }
  }

  // --- Kernel timings -------------------------------------------------------
  const std::size_t n = rows;
  const std::size_t n_opts = 12;
  std::vector<std::int32_t> codes(n);
  std::vector<std::uint64_t> masks(n);
  std::vector<std::uint8_t> missing(n);
  std::vector<double> weights(n);
  {
    rcr::Rng rng(seed ^ 0xABCDULL);
    for (std::size_t i = 0; i < n; ++i) {
      const bool miss = rng.next_double() < 0.1;
      codes[i] = rng.next_double() < 0.07
                     ? -1
                     : static_cast<std::int32_t>(rng.next_below(6));
      masks[i] = miss ? 0 : (rng.next_u64() & rng.next_u64() & 0xFFFULL);
      missing[i] = miss ? 1 : 0;
      weights[i] = rng.next_double() * 2.0 + 0.25;
    }
  }
  std::vector<std::uint64_t> tallies(6 * n_opts);
  std::vector<double> cells(6 * n_opts);
  std::vector<std::uint64_t> u64_buf(4096);
  std::vector<std::uint64_t> u64_out(4096);
  std::vector<double> f64_out(4096);
  {
    rcr::Rng rng(seed ^ 0x1234ULL);
    for (auto& v : u64_buf) v = rng.next_u64();
  }

  std::vector<Row> rowsv;
  rowsv.push_back(bench_both("tally_multiselect", n, [&] {
    std::fill(tallies.begin(), tallies.end(), 0);
    rcr::simd::tally_multiselect(codes.data(), masks.data(), 0, n, n_opts,
                                 tallies.data());
    g_sink += tallies[0];
  }));
  rowsv.push_back(bench_both("tally_options", n, [&] {
    std::fill(tallies.begin(), tallies.end(), 0);
    g_sink += rcr::simd::tally_options(masks.data(), missing.data(), 0, n,
                                       n_opts, tallies.data());
    g_sink += tallies[0];
  }));
  rowsv.push_back(bench_both("add_weighted_multiselect", n, [&] {
    std::fill(cells.begin(), cells.end(), 0.0);
    rcr::simd::add_weighted_multiselect(codes.data(), masks.data(),
                                        missing.data(), weights.data(), 0, n,
                                        n_opts, cells.data());
    g_sink += static_cast<std::uint64_t>(cells[0]);
  }));
  rowsv.push_back(bench_both("mix64_map", u64_buf.size(), [&] {
    rcr::simd::mix64_map(u64_buf.data(), u64_buf.size(), 0x5EEDULL,
                         u64_out.data());
    g_sink += u64_out.back();
  }));
  rowsv.push_back(bench_both("mix64_combine", u64_buf.size(), [&] {
    rcr::simd::mix64_combine(u64_out.data(), u64_buf.data(), u64_buf.size());
    g_sink += u64_out.back();
  }));
  {
    rcr::simd::Philox fill_rng(seed);
    rowsv.push_back(bench_both("philox_fill_u64", u64_out.size(), [&] {
      fill_rng.fill_u64(u64_out);
      g_sink += u64_out.back();
    }));
    rcr::simd::Philox dbl_rng(seed);
    rowsv.push_back(bench_both("philox_fill_double", f64_out.size(), [&] {
      dbl_rng.fill_double(f64_out);
      g_sink += static_cast<std::uint64_t>(f64_out.back() * 1e9);
    }));
  }
  rowsv.push_back(bench_both("unit_doubles_from_u64", u64_buf.size(), [&] {
    rcr::simd::unit_doubles_from_u64(u64_buf.data(), u64_buf.size(),
                                     f64_out.data());
    g_sink += static_cast<std::uint64_t>(f64_out.back() * 1e9);
  }));

  // --- Report ---------------------------------------------------------------
  char buf[512];
  std::string json = "{\n  \"benchmark\": \"micro_simd\",\n";
  std::snprintf(buf, sizeof buf, "  \"simd\": \"%s\",\n  \"rows\": %zu,\n",
                simd.c_str(), n);
  json += buf;
  json += "  \"results\": [\n";
  for (std::size_t i = 0; i < rowsv.size(); ++i) {
    std::snprintf(buf, sizeof buf,
                  "    {\"name\": \"%s\", \"scalar_ns_per_item\": %.4f, "
                  "\"simd_ns_per_item\": %.4f}%s\n",
                  rowsv[i].name.c_str(), rowsv[i].scalar_ns, rowsv[i].simd_ns,
                  i + 1 < rowsv.size() ? "," : "");
    json += buf;
  }
  json += "  ],\n  \"speedups\": {\n";
  for (std::size_t i = 0; i < rowsv.size(); ++i) {
    std::snprintf(buf, sizeof buf, "    \"%s\": %.2f%s\n",
                  rowsv[i].name.c_str(),
                  rowsv[i].simd_ns > 0.0 ? rowsv[i].scalar_ns / rowsv[i].simd_ns
                                         : 0.0,
                  i + 1 < rowsv.size() ? "," : "");
    json += buf;
  }
  std::snprintf(buf, sizeof buf,
                "  },\n  \"verified\": %s,\n  \"checksum\": %llu\n}\n",
                verified ? "true" : "false",
                static_cast<unsigned long long>(g_sink % 1000000007ULL));
  json += buf;

  if (out_path != nullptr) {
    std::FILE* f = std::fopen(out_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "micro_simd: cannot open %s\n", out_path);
      return 1;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
  }
  std::fputs(json.c_str(), stdout);
  return verified ? 0 : 2;
}
