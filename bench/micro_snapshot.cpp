// Snapshot ingest microbenchmark. The same survey-shaped table travels two
// roads into memory:
//   * serial.read_csv / parallel.read_csv_parallel — the text interchange
//     path (parse every byte);
//   * snapshot.write -> snapshot.read — the binary columnar path (mmap,
//     validate checksums, alias or memcpy the pages). read_verified is the
//     default configuration (every page hashed, codes/masks/flags
//     range-checked); read_unverified trusts the file and shows the floor.
// Emits a JSON report (stdout, or --out FILE); BENCH_snapshot.json keeps
// the checked-in baseline. CI smoke-checks the headline ratio:
// snapshot_read_vs_serial_csv_mibps must clear 10x.
//
// Verification is part of the run, not a separate test: the snapshot-read
// tables must reproduce the CSV text byte-for-byte and fingerprint
// identically to the CSV-parsed table under the query engine. Exit status
// 2 when any check fails.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "data/csv.hpp"
#include "data/snapshot.hpp"
#include "simd/dispatch.hpp"
#include "data/table.hpp"
#include "parallel/thread_pool.hpp"
#include "query/engine.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace {

// Survey-shaped rows exercising every page kind: two categorical columns
// (i32 code pages), a multi-select (u64 mask + u8 flag pages), a numeric
// (f64 value pages), with missingness in each.
rcr::data::Table make_table(std::size_t rows, std::uint64_t seed) {
  const std::vector<std::string> fields = {
      "Physics", "Biology", "CS, theory", "CS, systems", "Astronomy",
      "Earth science"};
  const std::vector<std::string> notes = {
      "plain answer", "uses \"air quotes\"", "comma, separated",
      "\"quoted\", with comma", "simple", "-"};
  const std::vector<std::string> langs = {"Python", "C++", "R",
                                          "Fortran", "Julia", "MATLAB"};

  rcr::data::Table t;
  auto& field = t.add_categorical("field", fields);
  auto& note = t.add_categorical("note", notes);
  auto& lang_col = t.add_multiselect("langs", langs);
  auto& score = t.add_numeric("score");

  rcr::Rng rng(seed);
  for (std::size_t i = 0; i < rows; ++i) {
    if (rng.next_double() < 0.05)
      field.push_missing();
    else
      field.push_code(static_cast<std::int32_t>(rng.next_below(6)));
    if (rng.next_double() < 0.08)
      note.push_missing();
    else
      note.push_code(static_cast<std::int32_t>(rng.next_below(6)));
    if (rng.next_double() < 0.10)
      lang_col.push_missing();
    else
      lang_col.push_mask(rng.next_u64() & rng.next_u64() & 0x3FULL);
    if (rng.next_double() < 0.07)
      score.push_missing();
    else
      score.push(rng.normal() * 12.0 + 40.0);
  }
  return t;
}

double best_of(int runs, const auto& pass) {
  double best = 1e300;
  for (int r = 0; r < runs; ++r) {
    rcr::Stopwatch sw;
    pass();
    best = std::min(best, sw.elapsed_seconds());
  }
  return best;
}

std::string to_csv(const rcr::data::Table& t) {
  std::ostringstream out;
  rcr::data::write_csv(out, t);
  return out.str();
}

std::uint64_t bits_of(double v) {
  std::uint64_t b = 0;
  std::memcpy(&b, &v, sizeof(v));
  return b;
}

// Fused-engine fingerprint over crosstab counts, option shares, and the
// numeric summary — the downstream bits a format swap must not move.
std::uint64_t query_fingerprint(const rcr::data::Table& t) {
  rcr::query::QueryEngine engine(t);
  const auto ct = engine.add_crosstab("field", "note");
  const auto os = engine.add_option_shares("langs");
  const auto ns = engine.add_numeric_summary("score");
  engine.run(nullptr);

  std::uint64_t fp = 0;
  const auto fold = [&](double v) {
    fp = fp * 0x9E3779B97F4A7C15ULL + bits_of(v);
  };
  const auto& x = engine.crosstab(ct);
  for (std::size_t r = 0; r < x.counts.rows(); ++r)
    for (std::size_t c = 0; c < x.counts.cols(); ++c)
      fold(x.counts.at(r, c));
  for (const auto& s : engine.shares(os)) {
    fold(s.count);
    fold(s.total);
    fold(s.share.lo);
    fold(s.share.hi);
  }
  const auto& num = engine.numeric(ns);
  fold(static_cast<double>(num.count));
  fold(num.sum);
  fold(num.min);
  fold(num.max);
  return fp;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t rows = 400000;
  std::size_t threads = 8;
  std::uint64_t seed = 29;
  const char* out_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--rows") == 0 && i + 1 < argc)
      rows = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
      threads = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc)
      seed = std::strtoull(argv[++i], nullptr, 10);
    else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out_path = argv[++i];
  }
  const std::string simd = rcr::simd::describe();
  std::fprintf(stderr,
               "bench_micro_snapshot: seed=%llu threads=%zu rows=%zu simd=%s\n",
               static_cast<unsigned long long>(seed), threads, rows,
               simd.c_str());

  const rcr::data::Table t = make_table(rows, seed);
  const std::string text = to_csv(t);
  const double csv_mib = static_cast<double>(text.size()) / (1024.0 * 1024.0);

  const std::string snap_path =
      (std::filesystem::temp_directory_path() /
       ("rcr_micro_snapshot_" + std::to_string(seed) + ".snap"))
          .string();

  rcr::parallel::ThreadPool pool(threads == 0 ? 1 : threads);
  rcr::parallel::ThreadPool* pool_ptr = threads == 0 ? nullptr : &pool;

  rcr::data::Table serial_t, parallel_t, snap_verified_t, snap_fast_t;
  const double serial_s = best_of(3, [&] {
    std::istringstream in(text);
    serial_t = rcr::data::read_csv(in, t);
  });
  const double parallel_s = best_of(3, [&] {
    std::istringstream in(text);
    parallel_t = rcr::data::read_csv_parallel(in, t, pool_ptr);
  });

  const double write_s =
      best_of(3, [&] { rcr::data::write_snapshot(t, snap_path); });
  const double snap_bytes_d =
      static_cast<double>(std::filesystem::file_size(snap_path));
  const double snap_mib = snap_bytes_d / (1024.0 * 1024.0);

  const double read_verified_s = best_of(3, [&] {
    snap_verified_t = rcr::data::read_snapshot(snap_path);
  });
  rcr::data::SnapshotReadOptions trusted;
  trusted.verify = false;
  const double read_fast_s = best_of(3, [&] {
    snap_fast_t = rcr::data::read_snapshot(snap_path, trusted);
  });

  // Verification gate: both snapshot reads reproduce the CSV bytes and the
  // query fingerprint of the parsed table.
  const bool round_trip_bitwise = to_csv(snap_verified_t) == text &&
                                  to_csv(snap_fast_t) == text &&
                                  to_csv(serial_t) == text &&
                                  to_csv(parallel_t) == text;
  const std::uint64_t reference_fp = query_fingerprint(serial_t);
  const bool fingerprints_match =
      query_fingerprint(snap_verified_t) == reference_fp &&
      query_fingerprint(snap_fast_t) == reference_fp;
  const bool verified = round_trip_bitwise && fingerprints_match;

  // The headline ratio: ingest bandwidth, each format over its own bytes.
  const double serial_mibps = csv_mib / serial_s;
  const double snap_mibps = snap_mib / read_verified_s;

  char buf[512];
  std::string json = "{\n  \"benchmark\": \"micro_snapshot\",\n";
  std::snprintf(buf, sizeof buf,
                "  \"simd\": \"%s\",\n"
                "  \"rows\": %zu,\n  \"csv_bytes\": %zu,\n"
                "  \"snapshot_bytes\": %zu,\n  \"threads\": %zu,\n"
                "  \"results\": [\n",
                simd.c_str(), rows, text.size(),
                static_cast<std::size_t>(snap_bytes_d), threads);
  json += buf;
  const struct {
    const char* name;
    double seconds;
    double mib;
  } lines[] = {
      {"serial.read_csv", serial_s, csv_mib},
      {"parallel.read_csv_parallel", parallel_s, csv_mib},
      {"snapshot.write", write_s, snap_mib},
      {"snapshot.read_verified", read_verified_s, snap_mib},
      {"snapshot.read_unverified", read_fast_s, snap_mib},
  };
  for (std::size_t i = 0; i < std::size(lines); ++i) {
    std::snprintf(buf, sizeof buf,
                  "    {\"name\": \"%s\", \"ms\": %.3f, "
                  "\"mib_per_sec\": %.1f}%s\n",
                  lines[i].name, lines[i].seconds * 1e3,
                  lines[i].mib / lines[i].seconds,
                  i + 1 < std::size(lines) ? "," : "");
    json += buf;
  }
  std::snprintf(buf, sizeof buf,
                "  ],\n  \"speedups\": {\n"
                "    \"snapshot_read_vs_serial_csv_mibps\": %.1f,\n"
                "    \"snapshot_read_vs_serial_csv_time\": %.1f,\n"
                "    \"snapshot_read_unverified_vs_serial_csv_time\": %.1f,\n"
                "    \"snapshot_write_vs_serial_csv_time\": %.1f\n  },\n",
                snap_mibps / serial_mibps, serial_s / read_verified_s,
                serial_s / read_fast_s, serial_s / write_s);
  json += buf;
  std::snprintf(buf, sizeof buf,
                "  \"round_trip_bitwise\": %s,\n"
                "  \"query_fingerprints_match\": %s,\n"
                "  \"verified\": %s\n}\n",
                round_trip_bitwise ? "true" : "false",
                fingerprints_match ? "true" : "false",
                verified ? "true" : "false");
  json += buf;

  std::error_code ec;
  std::filesystem::remove(snap_path, ec);

  if (out_path != nullptr) {
    std::FILE* f = std::fopen(out_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "micro_snapshot: cannot open %s\n", out_path);
      return 1;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
  }
  std::fputs(json.c_str(), stdout);
  return verified ? 0 : 2;
}
