// Microbenchmark of the draw pipeline: scalar Rng calls vs. the batched
// fill_* paths vs. the K-stream BatchRng, plus AliasTable::sample vs.
// sample_batch, plus the counter-based simd::Philox (scalar draws vs. the
// SIMD fill kernels). Emits a JSON report (stdout, or --out FILE) so CI
// can keep a machine-readable baseline; the acceptance bar for the batched
// pipeline is >= 3x the scalar path on u64 generation. The report records
// the dispatched SIMD ISA in its "simd" field.
//
// Buffers are sized to stay L1/L2-resident (32 KiB) so the numbers measure
// generation throughput, not memory bandwidth.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "simd/dispatch.hpp"
#include "simd/philox.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace {

constexpr std::size_t kBufU64 = 4096;   // 32 KiB of u64 draws per pass
constexpr std::uint64_t kBound = 1000;  // typical resampling index bound

// Accumulated across all passes so the optimizer cannot drop the work.
std::uint64_t g_sink = 0;

struct Result {
  std::string name;
  double ns_per_draw = 0.0;
  double draws_per_sec = 0.0;
};

// Times `pass` (one pass = `draws_per_pass` draws): calibrates a repeat
// count targeting ~100 ms, then reports the best of three timed runs.
template <typename Pass>
Result run_bench(const std::string& name, std::size_t draws_per_pass,
                 Pass&& pass) {
  std::size_t reps = 1;
  for (;;) {
    rcr::Stopwatch w;
    for (std::size_t r = 0; r < reps; ++r) pass();
    const double s = w.elapsed_seconds();
    if (s >= 0.01 || reps >= (std::size_t{1} << 30)) {
      reps = std::max<std::size_t>(
          1, static_cast<std::size_t>(static_cast<double>(reps) * 0.1 /
                                      std::max(s, 1e-9)));
      break;
    }
    reps *= 4;
  }

  double best = 1e300;
  for (int run = 0; run < 3; ++run) {
    rcr::Stopwatch w;
    for (std::size_t r = 0; r < reps; ++r) pass();
    best = std::min(best, w.elapsed_seconds());
  }
  const double total_draws =
      static_cast<double>(reps) * static_cast<double>(draws_per_pass);
  Result res;
  res.name = name;
  res.ns_per_draw = best * 1e9 / total_draws;
  res.draws_per_sec = total_draws / best;
  return res;
}

double find(const std::vector<Result>& rs, const std::string& name) {
  for (const Result& r : rs)
    if (r.name == name) return r.ns_per_draw;
  return 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out_path = argv[++i];
  }
  const std::string simd = rcr::simd::describe();
  std::fprintf(stderr, "bench_micro_rng: seed=42 threads=1 simd=%s\n",
               simd.c_str());

  std::vector<std::uint64_t> u64_buf(kBufU64);
  std::vector<double> f64_buf(kBufU64);
  std::vector<std::size_t> idx_buf(kBufU64);

  rcr::Rng scalar_rng(42);
  rcr::Rng fill_rng(42);
  rcr::BatchRng batch_rng(42);

  std::vector<Result> results;

  // Raw u64 generation.
  results.push_back(run_bench("scalar.next_u64", kBufU64, [&] {
    for (std::uint64_t& v : u64_buf) v = scalar_rng.next_u64();
    g_sink += u64_buf.back();
  }));
  results.push_back(run_bench("rng.fill_u64", kBufU64, [&] {
    fill_rng.fill_u64(u64_buf);
    g_sink += u64_buf.back();
  }));
  results.push_back(run_bench("batch.fill_u64", kBufU64, [&] {
    batch_rng.fill_u64(u64_buf);
    g_sink += u64_buf.back();
  }));

  // Unit doubles.
  results.push_back(run_bench("scalar.next_double", kBufU64, [&] {
    for (double& v : f64_buf) v = scalar_rng.next_double();
    g_sink += static_cast<std::uint64_t>(f64_buf.back() * 1e9);
  }));
  results.push_back(run_bench("batch.fill_double", kBufU64, [&] {
    batch_rng.fill_double(f64_buf);
    g_sink += static_cast<std::uint64_t>(f64_buf.back() * 1e9);
  }));

  // Bounded integers (Lemire rejection).
  results.push_back(run_bench("scalar.next_below", kBufU64, [&] {
    for (std::uint64_t& v : u64_buf) v = scalar_rng.next_below(kBound);
    g_sink += u64_buf.back();
  }));
  results.push_back(run_bench("rng.fill_below", kBufU64, [&] {
    fill_rng.fill_below(kBound, u64_buf);
    g_sink += u64_buf.back();
  }));
  results.push_back(run_bench("batch.fill_below", kBufU64, [&] {
    batch_rng.fill_below(kBound, u64_buf);
    g_sink += u64_buf.back();
  }));

  // Philox4x32-10 counter-based draws: the scalar block-at-a-time path vs.
  // the SIMD fill kernels.
  {
    rcr::simd::Philox scalar_philox(42);
    rcr::simd::Philox fill_philox(42);
    rcr::simd::Philox dbl_philox(42);
    results.push_back(run_bench("philox.next_u64", kBufU64, [&] {
      for (std::uint64_t& v : u64_buf) v = scalar_philox.next_u64();
      g_sink += u64_buf.back();
    }));
    results.push_back(run_bench("philox.fill_u64", kBufU64, [&] {
      fill_philox.fill_u64(u64_buf);
      g_sink += u64_buf.back();
    }));
    results.push_back(run_bench("philox.fill_double", kBufU64, [&] {
      dbl_philox.fill_double(f64_buf);
      g_sink += static_cast<std::uint64_t>(f64_buf.back() * 1e9);
    }));
  }

  // Alias-table categorical sampling.
  {
    std::vector<double> weights(256);
    rcr::Rng wrng(7);
    for (double& w : weights) w = wrng.uniform(0.1, 4.0);
    rcr::AliasTable table(weights);
    rcr::Rng a_rng(11), b_rng(11);
    results.push_back(run_bench("alias.sample", kBufU64, [&] {
      for (std::size_t& v : idx_buf) v = table.sample(a_rng);
      g_sink += idx_buf.back();
    }));
    results.push_back(run_bench("alias.sample_batch", kBufU64, [&] {
      table.sample_batch(b_rng, idx_buf);
      g_sink += idx_buf.back();
    }));
  }

  // Speedups of the batched pipeline over the matching scalar loop.
  struct Pair {
    const char* label;
    const char* scalar;
    const char* batched;
  };
  const Pair pairs[] = {
      {"u64", "scalar.next_u64", "batch.fill_u64"},
      {"double", "scalar.next_double", "batch.fill_double"},
      {"below", "scalar.next_below", "batch.fill_below"},
      {"alias", "alias.sample", "alias.sample_batch"},
      {"philox_u64", "philox.next_u64", "philox.fill_u64"},
      {"philox_double", "philox.next_u64", "philox.fill_double"},
  };

  std::string json = "{\n  \"benchmark\": \"micro_rng\",\n  \"simd\": \"" +
                     simd + "\",\n  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    char line[256];
    std::snprintf(line, sizeof line,
                  "    {\"name\": \"%s\", \"ns_per_draw\": %.4f, "
                  "\"draws_per_sec\": %.3e}%s\n",
                  results[i].name.c_str(), results[i].ns_per_draw,
                  results[i].draws_per_sec,
                  i + 1 < results.size() ? "," : "");
    json += line;
  }
  json += "  ],\n  \"speedups\": {\n";
  for (std::size_t i = 0; i < std::size(pairs); ++i) {
    const double s = find(results, pairs[i].scalar);
    const double b = find(results, pairs[i].batched);
    char line[128];
    std::snprintf(line, sizeof line, "    \"%s\": %.2f%s\n", pairs[i].label,
                  b > 0.0 ? s / b : 0.0, i + 1 < std::size(pairs) ? "," : "");
    json += line;
  }
  char tail[64];
  std::snprintf(tail, sizeof tail, "  },\n  \"checksum\": %llu\n}\n",
                static_cast<unsigned long long>(g_sink % 1000000007ULL));
  json += tail;

  if (out_path != nullptr) {
    std::FILE* f = std::fopen(out_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "micro_rng: cannot open %s\n", out_path);
      return 1;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
  }
  std::fputs(json.c_str(), stdout);
  return 0;
}
