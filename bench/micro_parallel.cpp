// Microbenchmarks of the parallel runtime, including the static-vs-dynamic
// chunking ablation DESIGN.md calls out. On a single-core host the numbers
// quantify pure runtime overhead (the interesting part for the survey's
// "parallelism has a fixed cost" discussion).
#include <benchmark/benchmark.h>

#include <cmath>
#include <vector>

#include "obs/metrics.hpp"
#include "parallel/algorithms.hpp"
#include "parallel/thread_pool.hpp"

namespace {

rcr::parallel::ThreadPool& pool() {
  static rcr::parallel::ThreadPool p;
  return p;
}

void BM_RunBatchOverhead(benchmark::State& state) {
  const auto tasks_n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(tasks_n);
    for (std::size_t i = 0; i < tasks_n; ++i)
      tasks.push_back([] { benchmark::DoNotOptimize(0); });
    pool().run_batch(std::move(tasks));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RunBatchOverhead)->Arg(1)->Arg(16)->Arg(256);

void parallel_for_bench(benchmark::State& state,
                        rcr::parallel::Schedule schedule) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> out(n);
  for (auto _ : state) {
    rcr::parallel::parallel_for(
        pool(), 0, n,
        [&](std::size_t i) {
          out[i] = std::sqrt(static_cast<double>(i) + 1.0);
        },
        {schedule, 0});
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_ParallelForStatic(benchmark::State& state) {
  parallel_for_bench(state, rcr::parallel::Schedule::kStatic);
}
BENCHMARK(BM_ParallelForStatic)->Range(1024, 1 << 20);

void BM_ParallelForDynamic(benchmark::State& state) {
  parallel_for_bench(state, rcr::parallel::Schedule::kDynamic);
}
BENCHMARK(BM_ParallelForDynamic)->Range(1024, 1 << 20);

// Irregular per-iteration cost: where dynamic scheduling should earn its
// keep on multi-core hosts.
void irregular_bench(benchmark::State& state,
                     rcr::parallel::Schedule schedule) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> out(n);
  for (auto _ : state) {
    rcr::parallel::parallel_for(
        pool(), 0, n,
        [&](std::size_t i) {
          // Cost spikes on every 64th index.
          const std::size_t reps = (i % 64 == 0) ? 512 : 4;
          double acc = 0.0;
          for (std::size_t r = 0; r < reps; ++r)
            acc += std::sqrt(static_cast<double>(i + r));
          out[i] = acc;
        },
        {schedule, 0});
    benchmark::DoNotOptimize(out.data());
  }
}

void BM_IrregularStatic(benchmark::State& state) {
  irregular_bench(state, rcr::parallel::Schedule::kStatic);
}
BENCHMARK(BM_IrregularStatic)->Arg(1 << 14);

void BM_IrregularDynamic(benchmark::State& state) {
  irregular_bench(state, rcr::parallel::Schedule::kDynamic);
}
BENCHMARK(BM_IrregularDynamic)->Arg(1 << 14);

void BM_ParallelReduce(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const double s = rcr::parallel::parallel_reduce<double>(
        pool(), 0, n, 0.0,
        [](std::size_t lo, std::size_t hi) {
          double acc = 0.0;
          for (std::size_t i = lo; i < hi; ++i)
            acc += static_cast<double>(i);
          return acc;
        },
        [](double a, double b) { return a + b; });
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ParallelReduce)->Range(1 << 12, 1 << 20);

// --- Observability overhead ---------------------------------------------------
// The obs primitives sit on the pool's task hot path; these pin their unit
// cost. Compare a build against -DRCR_OBS_DISABLED=ON for the end-to-end
// overhead (the acceptance bar is <=2% on the loop benches above).

void BM_ObsCounterAdd(benchmark::State& state) {
  auto& c = rcr::obs::registry().counter("bench.counter");
  for (auto _ : state) {
    c.add(1);
    benchmark::DoNotOptimize(&c);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsCounterAdd);

void BM_ObsGaugeSet(benchmark::State& state) {
  auto& g = rcr::obs::registry().gauge("bench.gauge");
  std::int64_t v = 0;
  for (auto _ : state) {
    g.set(v++ & 0xFF);
    benchmark::DoNotOptimize(&g);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsGaugeSet);

void BM_ObsHistogramRecord(benchmark::State& state) {
  auto& h = rcr::obs::registry().histogram("bench.histogram");
  double v = 0.001;
  for (auto _ : state) {
    h.record(v);
    v = v < 1e4 ? v * 1.1 : 0.001;
    benchmark::DoNotOptimize(&h);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsHistogramRecord);

}  // namespace

BENCHMARK_MAIN();
