// M2 scale demo: stream a synthetic population that never fits in memory
// through the rcr::stream sketch engine.
//
//   bench_m2_stream --rows 10000000 --threads 8
//
// processes the population in block_rows-sized shards (peak resident state:
// threads blocks of rows plus the sketch, reported and bounded well under
// 64 MB), prints the T2/T4-style streaming report, and — when an exact
// reference is affordable (--rows <= 1M, or --exact to force it) —
// materializes the same population once and prints a sketch-vs-exact error
// table. --json FILE emits the error metrics for CI to diff against the
// committed tolerances in bench/stream_tolerances.json.
//
// The final line prints a fingerprint hash over all sketch state; it is
// identical for any --threads value (index-ordered shard merges).
#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <exception>
#include <iostream>
#include <memory>
#include <unordered_set>
#include <vector>

#include "core/rcr.hpp"
#include "core/stream_study.hpp"
#include "simd/dispatch.hpp"
#include "stream/table_sketch.hpp"

namespace {

using rcr::stream::TableSketch;

// Order-sensitive 64-bit fold over the sketch's observable state.
struct Fingerprint {
  std::uint64_t h = 0x9E3779B97F4A7C15ULL;
  void mix(std::uint64_t v) { h = rcr::stream::mix64(h ^ v); }
  void mix(double v) { mix(std::bit_cast<std::uint64_t>(v)); }
  void mix(const std::string& s) { mix(rcr::stream::hash_bytes(s, 0)); }
};

std::uint64_t sketch_fingerprint(const TableSketch& sketch) {
  Fingerprint fp;
  fp.mix(sketch.rows());
  const auto& schema = sketch.schema();
  for (const auto& name : schema.column_names()) {
    switch (schema.kind(name)) {
      case rcr::data::ColumnKind::kNumeric: {
        const auto& m = sketch.moments(name);
        fp.mix(m.count());
        fp.mix(m.mean());
        fp.mix(m.variance());
        fp.mix(m.min());
        fp.mix(m.max());
        const auto& q = sketch.quantile_sketch(name);
        for (double p : {0.01, 0.25, 0.5, 0.75, 0.9, 0.99})
          fp.mix(q.quantile(p));
        break;
      }
      case rcr::data::ColumnKind::kCategorical:
        for (double c : sketch.category_counts(name)) fp.mix(c);
        break;
      case rcr::data::ColumnKind::kMultiSelect:
        for (double c : sketch.option_counts(name)) fp.mix(c);
        break;
    }
  }
  for (const auto& [r, c] : sketch.options().crosstabs) {
    const auto& xt = sketch.crosstab(r, c);
    for (std::size_t i = 0; i < xt.row_labels().size(); ++i)
      for (std::size_t j = 0; j < xt.col_labels().size(); ++j)
        fp.mix(xt.at(i, j));
  }
  fp.mix(sketch.distinct().estimate());
  for (const auto& e : sketch.heavy_hitters().top(16)) {
    fp.mix(e.key);
    fp.mix(e.count);
  }
  if (!sketch.options().reservoir_column.empty()) {
    for (const auto& item : sketch.reservoir().items()) {
      fp.mix(item.index);
      fp.mix(item.value);
    }
  }
  return fp.h;
}

struct ErrorRow {
  std::string metric;
  double value = 0.0;
  double bound = 0.0;
};

// Sketch-vs-exact validation: materializes the identical population once
// (generate_wave emits the same row sequence the shards concatenated to)
// and measures every sketch's deviation from the exact answer.
std::vector<ErrorRow> validate(const TableSketch& sketch,
                               const rcr::synth::GeneratorConfig& gen) {
  std::vector<ErrorRow> rows;
  const rcr::data::Table full = rcr::synth::generate_wave(gen);
  const double n = static_cast<double>(full.row_count());

  // Moments and quantiles per numeric column.
  double mean_err = 0.0, quantile_err = 0.0;
  for (const char* name :
       {rcr::synth::col::kYearsProgramming, rcr::synth::col::kCoresTypical,
        rcr::synth::col::kDatasetGb, rcr::synth::col::kTimeProgramming,
        rcr::synth::col::kExpertise}) {
    const auto& col = full.numeric(name);
    std::vector<double> values;
    values.reserve(col.size());
    long double sum = 0.0L;
    for (std::size_t i = 0; i < col.size(); ++i) {
      const double v = col.at(i);
      if (rcr::data::NumericColumn::is_missing(v)) continue;
      values.push_back(v);
      sum += v;
    }
    std::sort(values.begin(), values.end());
    const double exact_mean = static_cast<double>(sum / values.size());
    const auto& m = sketch.moments(name);
    if (exact_mean != 0.0) {
      mean_err = std::max(
          mean_err, std::abs(m.mean() - exact_mean) / std::abs(exact_mean));
    }
    const auto& q = sketch.quantile_sketch(name);
    for (double p : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
      const double est = q.quantile(p);
      const auto target = static_cast<double>(
          std::max<std::size_t>(1, static_cast<std::size_t>(
                                       std::ceil(p * values.size()))));
      // Certain rank interval of `est` in the exact sorted values.
      const auto lo = std::lower_bound(values.begin(), values.end(), est);
      const auto hi = std::upper_bound(values.begin(), values.end(), est);
      const double rank_lo = static_cast<double>(lo - values.begin()) + 1.0;
      const double rank_hi = static_cast<double>(hi - values.begin());
      double err = 0.0;
      if (target < rank_lo) err = rank_lo - target;
      if (target > rank_hi) err = target - rank_hi;
      quantile_err =
          std::max(quantile_err, err / static_cast<double>(values.size()));
    }
  }
  rows.push_back({"moments.mean.rel_err", mean_err, 1e-9});
  rows.push_back(
      {"quantile.rank_err_frac", quantile_err,
       2.0 * sketch.options().quantile_eps});

  // CountMin overestimate across every (column, label) cell, as a fraction
  // of the sketch's total weight, against the exact counts the sketch also
  // tracks.
  double cms_over = 0.0;
  const auto& cms = sketch.label_cms();
  const auto check_cell = [&](const std::string& column,
                              const std::string& label, double exact) {
    const double est = cms.estimate(TableSketch::label_key(column, label));
    if (est + 1e-9 < exact) cms_over = 1e9;  // underestimate = broken sketch
    if (cms.total_weight() > 0.0)
      cms_over = std::max(cms_over, (est - exact) / cms.total_weight());
  };
  for (const auto& name : full.column_names()) {
    if (full.kind(name) == rcr::data::ColumnKind::kCategorical) {
      const auto& col = full.categorical(name);
      const auto& counts = sketch.category_counts(name);
      for (std::size_t c = 0; c < col.category_count(); ++c)
        check_cell(name, col.category(c), counts[c]);
    } else if (full.kind(name) == rcr::data::ColumnKind::kMultiSelect) {
      const auto& col = full.multiselect(name);
      const auto& counts = sketch.option_counts(name);
      for (std::size_t o = 0; o < col.option_count(); ++o)
        check_cell(name, col.option(o), counts[o]);
    }
  }
  rows.push_back({"cms.over_frac", cms_over,
                  std::exp(1.0) / static_cast<double>(cms.width())});

  // HyperLogLog vs the true distinct count of the same composite keys.
  std::unordered_set<std::uint64_t> truth;
  truth.reserve(full.row_count());
  for (std::size_t i = 0; i < full.row_count(); ++i)
    truth.insert(sketch.row_key(full, i));
  const double distinct_true = static_cast<double>(truth.size());
  const double hll_err =
      std::abs(sketch.distinct().estimate() - distinct_true) / distinct_true;
  // 5 sigma of the standard error for the configured precision.
  const double hll_bound =
      5.0 * 1.04 /
      std::sqrt(static_cast<double>(
          std::size_t{1} << sketch.options().hll_precision));
  rows.push_back({"hll.rel_err", hll_err, hll_bound});

  // StreamingCrosstab must equal the materialized builders exactly.
  double xtab_diff = 0.0;
  for (const auto& [rcol, ccol] : sketch.options().crosstabs) {
    const auto streamed = sketch.crosstab(rcol, ccol).to_labeled();
    const auto exact =
        full.kind(ccol) == rcr::data::ColumnKind::kMultiSelect
            ? rcr::data::crosstab_multiselect(full, rcol, ccol)
            : rcr::data::crosstab(full, rcol, ccol);
    for (std::size_t r = 0; r < exact.row_labels.size(); ++r)
      for (std::size_t c = 0; c < exact.col_labels.size(); ++c)
        xtab_diff = std::max(xtab_diff, std::abs(streamed.counts.at(r, c) -
                                                 exact.counts.at(r, c)));
  }
  rows.push_back({"crosstab.max_abs_diff", xtab_diff, 0.0});

  // SpaceSaving stays exact while the label domain fits its capacity.
  rows.push_back(
      {"space_saving.inexact", sketch.heavy_hitters().exact() ? 0.0 : 1.0,
       0.0});
  rows.push_back({"reservoir.size_deficit",
                  static_cast<double>(
                      sketch.reservoir().capacity() -
                      std::min(sketch.reservoir().capacity(),
                               sketch.reservoir().items().size())),
                  0.0});
  return rows;
}

}  // namespace

int main(int argc, char** argv) try {
  rcr::CliParser cli(argc, argv);
  rcr::core::StreamStudyConfig config;
  config.respondents =
      static_cast<std::size_t>(cli.get_int_or("rows", 10000000));
  config.seed = static_cast<std::uint64_t>(cli.get_int_or("seed", 7));
  config.block_rows =
      static_cast<std::size_t>(cli.get_int_or("block", 65536));
  const auto threads = cli.get_int_or("threads", 0);
  const bool force_exact = cli.has_switch("exact");
  const bool skip_report = cli.has_switch("no-report");
  const auto json_path = cli.get("json");
  cli.finish();

  std::unique_ptr<rcr::parallel::ThreadPool> pool;
  if (threads > 0) {
    pool = std::make_unique<rcr::parallel::ThreadPool>(
        static_cast<std::size_t>(threads));
    config.pool = pool.get();
  }
  std::cerr << "bench_m2_stream: seed=" << config.seed
            << " threads=" << (pool ? pool->thread_count() : 1)
            << " rows=" << config.respondents
            << " block=" << config.block_rows
            << " simd=" << rcr::simd::describe() << "\n";

  rcr::Stopwatch watch;
  const auto sketch = rcr::core::run_stream_study(config);
  const double elapsed = watch.elapsed_seconds();

  if (!skip_report) std::cout << rcr::core::render_stream_report(sketch);
  std::printf(
      "\nthroughput: %.0f rows in %.2f s = %.2e rows/s, sketch %.2f MiB\n",
      static_cast<double>(sketch.rows()), elapsed,
      static_cast<double>(sketch.rows()) / elapsed,
      static_cast<double>(sketch.approx_bytes()) / (1024.0 * 1024.0));

  std::vector<ErrorRow> errors;
  const bool run_exact = force_exact || config.respondents <= 1000000;
  if (run_exact) {
    rcr::synth::GeneratorConfig gen;
    gen.wave = config.wave;
    gen.respondents = config.respondents;
    gen.seed = config.seed;
    errors = validate(sketch, gen);
    rcr::report::TextTable t({"Metric", "Observed", "Bound", "Status"});
    bool ok = true;
    for (const auto& e : errors) {
      const bool pass = e.value <= e.bound + 1e-12;
      ok = ok && pass;
      t.add_row({e.metric, rcr::format_double(e.value, 8),
                 rcr::format_double(e.bound, 8), pass ? "ok" : "FAIL"});
    }
    std::cout << "\nSketch vs exact (same stream, materialized once)\n"
              << t.render();
    if (!ok) {
      std::cerr << "bench_m2_stream: sketch error exceeded its bound\n";
      return 1;
    }
  } else {
    std::cout << "\n(exact reference skipped at this scale; pass --exact to "
                 "force it)\n";
  }

  const std::uint64_t fp = sketch_fingerprint(sketch);
  std::printf("fingerprint: %016" PRIx64 "\n", fp);

  if (json_path) {
    std::FILE* f = std::fopen(json_path->c_str(), "w");
    if (f == nullptr) {
      std::cerr << "bench_m2_stream: cannot open " << *json_path << "\n";
      return 1;
    }
    std::fprintf(f,
                 "{\n  \"benchmark\": \"m2_stream\",\n"
                 "  \"simd\": \"%s\",\n  \"rows\": %zu,\n"
                 "  \"threads\": %zu,\n  \"seed\": %llu,\n"
                 "  \"elapsed_s\": %.4f,\n  \"rows_per_sec\": %.4e,\n"
                 "  \"sketch_bytes\": %zu,\n  \"fingerprint\": \"%016" PRIx64
                 "\",\n  \"errors\": {\n",
                 rcr::simd::describe().c_str(),
                 static_cast<std::size_t>(sketch.rows()),
                 pool ? pool->thread_count() : std::size_t{1},
                 static_cast<unsigned long long>(config.seed), elapsed,
                 static_cast<double>(sketch.rows()) / elapsed,
                 sketch.approx_bytes(), fp);
    for (std::size_t i = 0; i < errors.size(); ++i) {
      std::fprintf(f, "    \"%s\": %.10g%s\n", errors[i].metric.c_str(),
                   errors[i].value, i + 1 < errors.size() ? "," : "");
    }
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
  }
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
