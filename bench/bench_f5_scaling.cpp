// Regenerates experiment F5 of the reconstructed evaluation (DESIGN.md).
#include "bench/experiment_main.hpp"

int main(int argc, char** argv) {
  return rcr::bench::run_experiment("F5", argc, argv);
}
