// Ablation A2: the cluster-side communication model. Sweeps rank counts
// for a BSP stencil-style workload under slow/fast networks and reports
// the scaling sweet spot — the quantitative backdrop for the survey's
// "how wide do researchers actually run?" distribution (F3).
#include <exception>
#include <iostream>

#include "core/rcr.hpp"
#include "sim/network.hpp"

int main(int argc, char** argv) try {
  rcr::CliParser cli(argc, argv);
  const double work_tflops = cli.get_double_or("work-tflops", 1.0);
  cli.finish();
  std::cerr << "bench[a2]: seed=n/a threads=1\n";

  rcr::sim::DistributedWorkload w;
  w.work_ops_total = work_tflops * 1e12;
  w.core_gflops = 8.0;
  w.halo_bytes_per_rank = 4e6;
  w.halo_neighbors = 4;

  struct Net {
    const char* name;
    rcr::sim::NetworkModel model;
  };
  const Net nets[] = {
      {"gigabit-ethernet", {50.0, 0.125}},   // 50 us, 1 Gb/s
      {"modern-cluster", {2.0, 12.5}},       // 2 us, 100 Gb/s
      {"ideal", {0.0, 1e6}},
  };

  std::cout << "== A2 (ablation): BSP step time vs ranks across networks ==\n"
            << "workload: " << work_tflops << " Tflop/step, 4 MB halos\n\n";
  rcr::report::TextTable t({"Ranks", "gigabit (ms)", "cluster (ms)",
                            "ideal (ms)"});
  for (std::size_t p = 1; p <= 4096; p *= 4) {
    std::vector<std::string> row = {std::to_string(p)};
    for (const auto& net : nets)
      row.push_back(rcr::format_double(
          1e3 * rcr::sim::bsp_step_time(net.model, w, p), 2));
    t.add_row(std::move(row));
  }
  std::cout << t.render() << "\n";

  for (const auto& net : nets) {
    std::cout << "sweet spot on " << net.name << ": "
              << rcr::sim::bsp_sweet_spot(net.model, w) << " ranks\n";
  }
  std::cout << "\nOn slow interconnects the same problem stops scaling two "
               "orders of magnitude earlier — the infrastructure gap behind "
               "the job-width distribution shift (F3).\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
