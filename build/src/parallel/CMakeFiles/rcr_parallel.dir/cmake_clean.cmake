file(REMOVE_RECURSE
  "CMakeFiles/rcr_parallel.dir/algorithms.cpp.o"
  "CMakeFiles/rcr_parallel.dir/algorithms.cpp.o.d"
  "CMakeFiles/rcr_parallel.dir/thread_pool.cpp.o"
  "CMakeFiles/rcr_parallel.dir/thread_pool.cpp.o.d"
  "librcr_parallel.a"
  "librcr_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcr_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
