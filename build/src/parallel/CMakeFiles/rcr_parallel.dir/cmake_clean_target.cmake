file(REMOVE_RECURSE
  "librcr_parallel.a"
)
