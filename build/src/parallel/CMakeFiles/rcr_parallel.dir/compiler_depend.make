# Empty compiler generated dependencies file for rcr_parallel.
# This may be replaced when dependencies are built.
