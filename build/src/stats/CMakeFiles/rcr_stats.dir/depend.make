# Empty dependencies file for rcr_stats.
# This may be replaced when dependencies are built.
