file(REMOVE_RECURSE
  "CMakeFiles/rcr_stats.dir/bootstrap.cpp.o"
  "CMakeFiles/rcr_stats.dir/bootstrap.cpp.o.d"
  "CMakeFiles/rcr_stats.dir/ci.cpp.o"
  "CMakeFiles/rcr_stats.dir/ci.cpp.o.d"
  "CMakeFiles/rcr_stats.dir/contingency.cpp.o"
  "CMakeFiles/rcr_stats.dir/contingency.cpp.o.d"
  "CMakeFiles/rcr_stats.dir/descriptive.cpp.o"
  "CMakeFiles/rcr_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/rcr_stats.dir/histogram.cpp.o"
  "CMakeFiles/rcr_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/rcr_stats.dir/matrix.cpp.o"
  "CMakeFiles/rcr_stats.dir/matrix.cpp.o.d"
  "CMakeFiles/rcr_stats.dir/nonparametric.cpp.o"
  "CMakeFiles/rcr_stats.dir/nonparametric.cpp.o.d"
  "CMakeFiles/rcr_stats.dir/permutation.cpp.o"
  "CMakeFiles/rcr_stats.dir/permutation.cpp.o.d"
  "CMakeFiles/rcr_stats.dir/power.cpp.o"
  "CMakeFiles/rcr_stats.dir/power.cpp.o.d"
  "CMakeFiles/rcr_stats.dir/regression.cpp.o"
  "CMakeFiles/rcr_stats.dir/regression.cpp.o.d"
  "CMakeFiles/rcr_stats.dir/special.cpp.o"
  "CMakeFiles/rcr_stats.dir/special.cpp.o.d"
  "librcr_stats.a"
  "librcr_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcr_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
