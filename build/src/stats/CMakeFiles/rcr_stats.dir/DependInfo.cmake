
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/bootstrap.cpp" "src/stats/CMakeFiles/rcr_stats.dir/bootstrap.cpp.o" "gcc" "src/stats/CMakeFiles/rcr_stats.dir/bootstrap.cpp.o.d"
  "/root/repo/src/stats/ci.cpp" "src/stats/CMakeFiles/rcr_stats.dir/ci.cpp.o" "gcc" "src/stats/CMakeFiles/rcr_stats.dir/ci.cpp.o.d"
  "/root/repo/src/stats/contingency.cpp" "src/stats/CMakeFiles/rcr_stats.dir/contingency.cpp.o" "gcc" "src/stats/CMakeFiles/rcr_stats.dir/contingency.cpp.o.d"
  "/root/repo/src/stats/descriptive.cpp" "src/stats/CMakeFiles/rcr_stats.dir/descriptive.cpp.o" "gcc" "src/stats/CMakeFiles/rcr_stats.dir/descriptive.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "src/stats/CMakeFiles/rcr_stats.dir/histogram.cpp.o" "gcc" "src/stats/CMakeFiles/rcr_stats.dir/histogram.cpp.o.d"
  "/root/repo/src/stats/matrix.cpp" "src/stats/CMakeFiles/rcr_stats.dir/matrix.cpp.o" "gcc" "src/stats/CMakeFiles/rcr_stats.dir/matrix.cpp.o.d"
  "/root/repo/src/stats/nonparametric.cpp" "src/stats/CMakeFiles/rcr_stats.dir/nonparametric.cpp.o" "gcc" "src/stats/CMakeFiles/rcr_stats.dir/nonparametric.cpp.o.d"
  "/root/repo/src/stats/permutation.cpp" "src/stats/CMakeFiles/rcr_stats.dir/permutation.cpp.o" "gcc" "src/stats/CMakeFiles/rcr_stats.dir/permutation.cpp.o.d"
  "/root/repo/src/stats/power.cpp" "src/stats/CMakeFiles/rcr_stats.dir/power.cpp.o" "gcc" "src/stats/CMakeFiles/rcr_stats.dir/power.cpp.o.d"
  "/root/repo/src/stats/regression.cpp" "src/stats/CMakeFiles/rcr_stats.dir/regression.cpp.o" "gcc" "src/stats/CMakeFiles/rcr_stats.dir/regression.cpp.o.d"
  "/root/repo/src/stats/special.cpp" "src/stats/CMakeFiles/rcr_stats.dir/special.cpp.o" "gcc" "src/stats/CMakeFiles/rcr_stats.dir/special.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rcr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/rcr_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
