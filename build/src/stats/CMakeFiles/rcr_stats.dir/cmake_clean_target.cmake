file(REMOVE_RECURSE
  "librcr_stats.a"
)
