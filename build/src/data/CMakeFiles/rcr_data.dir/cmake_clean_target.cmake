file(REMOVE_RECURSE
  "librcr_data.a"
)
