file(REMOVE_RECURSE
  "CMakeFiles/rcr_data.dir/column.cpp.o"
  "CMakeFiles/rcr_data.dir/column.cpp.o.d"
  "CMakeFiles/rcr_data.dir/crosstab.cpp.o"
  "CMakeFiles/rcr_data.dir/crosstab.cpp.o.d"
  "CMakeFiles/rcr_data.dir/csv.cpp.o"
  "CMakeFiles/rcr_data.dir/csv.cpp.o.d"
  "CMakeFiles/rcr_data.dir/recode.cpp.o"
  "CMakeFiles/rcr_data.dir/recode.cpp.o.d"
  "CMakeFiles/rcr_data.dir/summary.cpp.o"
  "CMakeFiles/rcr_data.dir/summary.cpp.o.d"
  "CMakeFiles/rcr_data.dir/table.cpp.o"
  "CMakeFiles/rcr_data.dir/table.cpp.o.d"
  "librcr_data.a"
  "librcr_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcr_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
