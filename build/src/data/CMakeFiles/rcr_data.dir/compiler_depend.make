# Empty compiler generated dependencies file for rcr_data.
# This may be replaced when dependencies are built.
