file(REMOVE_RECURSE
  "CMakeFiles/rcr_survey.dir/allocate.cpp.o"
  "CMakeFiles/rcr_survey.dir/allocate.cpp.o.d"
  "CMakeFiles/rcr_survey.dir/impute.cpp.o"
  "CMakeFiles/rcr_survey.dir/impute.cpp.o.d"
  "CMakeFiles/rcr_survey.dir/likert.cpp.o"
  "CMakeFiles/rcr_survey.dir/likert.cpp.o.d"
  "CMakeFiles/rcr_survey.dir/schema.cpp.o"
  "CMakeFiles/rcr_survey.dir/schema.cpp.o.d"
  "CMakeFiles/rcr_survey.dir/weighting.cpp.o"
  "CMakeFiles/rcr_survey.dir/weighting.cpp.o.d"
  "librcr_survey.a"
  "librcr_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcr_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
