file(REMOVE_RECURSE
  "librcr_survey.a"
)
