# Empty compiler generated dependencies file for rcr_survey.
# This may be replaced when dependencies are built.
