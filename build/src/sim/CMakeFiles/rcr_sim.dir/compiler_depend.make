# Empty compiler generated dependencies file for rcr_sim.
# This may be replaced when dependencies are built.
