file(REMOVE_RECURSE
  "librcr_sim.a"
)
