file(REMOVE_RECURSE
  "CMakeFiles/rcr_sim.dir/cluster.cpp.o"
  "CMakeFiles/rcr_sim.dir/cluster.cpp.o.d"
  "CMakeFiles/rcr_sim.dir/network.cpp.o"
  "CMakeFiles/rcr_sim.dir/network.cpp.o.d"
  "CMakeFiles/rcr_sim.dir/scaling.cpp.o"
  "CMakeFiles/rcr_sim.dir/scaling.cpp.o.d"
  "librcr_sim.a"
  "librcr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
