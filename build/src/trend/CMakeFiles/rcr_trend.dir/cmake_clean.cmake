file(REMOVE_RECURSE
  "CMakeFiles/rcr_trend.dir/trend.cpp.o"
  "CMakeFiles/rcr_trend.dir/trend.cpp.o.d"
  "librcr_trend.a"
  "librcr_trend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcr_trend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
