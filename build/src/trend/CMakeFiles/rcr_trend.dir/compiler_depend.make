# Empty compiler generated dependencies file for rcr_trend.
# This may be replaced when dependencies are built.
