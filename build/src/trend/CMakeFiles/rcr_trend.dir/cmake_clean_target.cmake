file(REMOVE_RECURSE
  "librcr_trend.a"
)
