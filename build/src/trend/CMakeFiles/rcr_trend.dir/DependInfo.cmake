
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trend/trend.cpp" "src/trend/CMakeFiles/rcr_trend.dir/trend.cpp.o" "gcc" "src/trend/CMakeFiles/rcr_trend.dir/trend.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/rcr_data.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rcr_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/rcr_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/rcr_report.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rcr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
