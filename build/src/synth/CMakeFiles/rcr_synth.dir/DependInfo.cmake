
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/calibration.cpp" "src/synth/CMakeFiles/rcr_synth.dir/calibration.cpp.o" "gcc" "src/synth/CMakeFiles/rcr_synth.dir/calibration.cpp.o.d"
  "/root/repo/src/synth/domain.cpp" "src/synth/CMakeFiles/rcr_synth.dir/domain.cpp.o" "gcc" "src/synth/CMakeFiles/rcr_synth.dir/domain.cpp.o.d"
  "/root/repo/src/synth/generator.cpp" "src/synth/CMakeFiles/rcr_synth.dir/generator.cpp.o" "gcc" "src/synth/CMakeFiles/rcr_synth.dir/generator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/survey/CMakeFiles/rcr_survey.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/rcr_data.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/rcr_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/rcr_report.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rcr_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rcr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
