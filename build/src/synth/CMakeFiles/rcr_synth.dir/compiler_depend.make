# Empty compiler generated dependencies file for rcr_synth.
# This may be replaced when dependencies are built.
