file(REMOVE_RECURSE
  "librcr_synth.a"
)
