file(REMOVE_RECURSE
  "CMakeFiles/rcr_synth.dir/calibration.cpp.o"
  "CMakeFiles/rcr_synth.dir/calibration.cpp.o.d"
  "CMakeFiles/rcr_synth.dir/domain.cpp.o"
  "CMakeFiles/rcr_synth.dir/domain.cpp.o.d"
  "CMakeFiles/rcr_synth.dir/generator.cpp.o"
  "CMakeFiles/rcr_synth.dir/generator.cpp.o.d"
  "librcr_synth.a"
  "librcr_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcr_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
