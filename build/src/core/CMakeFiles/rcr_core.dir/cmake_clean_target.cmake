file(REMOVE_RECURSE
  "librcr_core.a"
)
