file(REMOVE_RECURSE
  "CMakeFiles/rcr_core.dir/experiments_figures.cpp.o"
  "CMakeFiles/rcr_core.dir/experiments_figures.cpp.o.d"
  "CMakeFiles/rcr_core.dir/experiments_tables.cpp.o"
  "CMakeFiles/rcr_core.dir/experiments_tables.cpp.o.d"
  "CMakeFiles/rcr_core.dir/study.cpp.o"
  "CMakeFiles/rcr_core.dir/study.cpp.o.d"
  "librcr_core.a"
  "librcr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
