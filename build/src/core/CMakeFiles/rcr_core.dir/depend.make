# Empty dependencies file for rcr_core.
# This may be replaced when dependencies are built.
