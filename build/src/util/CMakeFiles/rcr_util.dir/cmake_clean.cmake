file(REMOVE_RECURSE
  "CMakeFiles/rcr_util.dir/cli.cpp.o"
  "CMakeFiles/rcr_util.dir/cli.cpp.o.d"
  "CMakeFiles/rcr_util.dir/rng.cpp.o"
  "CMakeFiles/rcr_util.dir/rng.cpp.o.d"
  "CMakeFiles/rcr_util.dir/strings.cpp.o"
  "CMakeFiles/rcr_util.dir/strings.cpp.o.d"
  "librcr_util.a"
  "librcr_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcr_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
