# Empty compiler generated dependencies file for rcr_util.
# This may be replaced when dependencies are built.
