file(REMOVE_RECURSE
  "librcr_util.a"
)
