
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/matmul.cpp" "src/kernels/CMakeFiles/rcr_kernels.dir/matmul.cpp.o" "gcc" "src/kernels/CMakeFiles/rcr_kernels.dir/matmul.cpp.o.d"
  "/root/repo/src/kernels/montecarlo.cpp" "src/kernels/CMakeFiles/rcr_kernels.dir/montecarlo.cpp.o" "gcc" "src/kernels/CMakeFiles/rcr_kernels.dir/montecarlo.cpp.o.d"
  "/root/repo/src/kernels/nbody.cpp" "src/kernels/CMakeFiles/rcr_kernels.dir/nbody.cpp.o" "gcc" "src/kernels/CMakeFiles/rcr_kernels.dir/nbody.cpp.o.d"
  "/root/repo/src/kernels/reduction.cpp" "src/kernels/CMakeFiles/rcr_kernels.dir/reduction.cpp.o" "gcc" "src/kernels/CMakeFiles/rcr_kernels.dir/reduction.cpp.o.d"
  "/root/repo/src/kernels/spmv.cpp" "src/kernels/CMakeFiles/rcr_kernels.dir/spmv.cpp.o" "gcc" "src/kernels/CMakeFiles/rcr_kernels.dir/spmv.cpp.o.d"
  "/root/repo/src/kernels/stencil.cpp" "src/kernels/CMakeFiles/rcr_kernels.dir/stencil.cpp.o" "gcc" "src/kernels/CMakeFiles/rcr_kernels.dir/stencil.cpp.o.d"
  "/root/repo/src/kernels/suite.cpp" "src/kernels/CMakeFiles/rcr_kernels.dir/suite.cpp.o" "gcc" "src/kernels/CMakeFiles/rcr_kernels.dir/suite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/parallel/CMakeFiles/rcr_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rcr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
