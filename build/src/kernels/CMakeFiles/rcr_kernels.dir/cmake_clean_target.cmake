file(REMOVE_RECURSE
  "librcr_kernels.a"
)
