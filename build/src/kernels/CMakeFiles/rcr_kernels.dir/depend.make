# Empty dependencies file for rcr_kernels.
# This may be replaced when dependencies are built.
