file(REMOVE_RECURSE
  "CMakeFiles/rcr_kernels.dir/matmul.cpp.o"
  "CMakeFiles/rcr_kernels.dir/matmul.cpp.o.d"
  "CMakeFiles/rcr_kernels.dir/montecarlo.cpp.o"
  "CMakeFiles/rcr_kernels.dir/montecarlo.cpp.o.d"
  "CMakeFiles/rcr_kernels.dir/nbody.cpp.o"
  "CMakeFiles/rcr_kernels.dir/nbody.cpp.o.d"
  "CMakeFiles/rcr_kernels.dir/reduction.cpp.o"
  "CMakeFiles/rcr_kernels.dir/reduction.cpp.o.d"
  "CMakeFiles/rcr_kernels.dir/spmv.cpp.o"
  "CMakeFiles/rcr_kernels.dir/spmv.cpp.o.d"
  "CMakeFiles/rcr_kernels.dir/stencil.cpp.o"
  "CMakeFiles/rcr_kernels.dir/stencil.cpp.o.d"
  "CMakeFiles/rcr_kernels.dir/suite.cpp.o"
  "CMakeFiles/rcr_kernels.dir/suite.cpp.o.d"
  "librcr_kernels.a"
  "librcr_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcr_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
