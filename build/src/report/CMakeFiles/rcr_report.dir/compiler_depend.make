# Empty compiler generated dependencies file for rcr_report.
# This may be replaced when dependencies are built.
