file(REMOVE_RECURSE
  "CMakeFiles/rcr_report.dir/experiment.cpp.o"
  "CMakeFiles/rcr_report.dir/experiment.cpp.o.d"
  "CMakeFiles/rcr_report.dir/series.cpp.o"
  "CMakeFiles/rcr_report.dir/series.cpp.o.d"
  "CMakeFiles/rcr_report.dir/table.cpp.o"
  "CMakeFiles/rcr_report.dir/table.cpp.o.d"
  "librcr_report.a"
  "librcr_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcr_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
