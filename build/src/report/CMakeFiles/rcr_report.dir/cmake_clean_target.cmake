file(REMOVE_RECURSE
  "librcr_report.a"
)
