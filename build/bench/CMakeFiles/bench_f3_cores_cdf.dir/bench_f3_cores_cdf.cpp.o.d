bench/CMakeFiles/bench_f3_cores_cdf.dir/bench_f3_cores_cdf.cpp.o: \
 /root/repo/bench/bench_f3_cores_cdf.cpp /usr/include/stdc-predef.h \
 /root/repo/bench/experiment_main.hpp
