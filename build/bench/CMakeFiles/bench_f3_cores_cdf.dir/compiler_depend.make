# Empty compiler generated dependencies file for bench_f3_cores_cdf.
# This may be replaced when dependencies are built.
