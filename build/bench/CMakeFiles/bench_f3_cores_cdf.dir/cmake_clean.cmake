file(REMOVE_RECURSE
  "CMakeFiles/bench_f3_cores_cdf.dir/bench_f3_cores_cdf.cpp.o"
  "CMakeFiles/bench_f3_cores_cdf.dir/bench_f3_cores_cdf.cpp.o.d"
  "bench_f3_cores_cdf"
  "bench_f3_cores_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f3_cores_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
