bench/CMakeFiles/bench_t3_models.dir/bench_t3_models.cpp.o: \
 /root/repo/bench/bench_t3_models.cpp /usr/include/stdc-predef.h \
 /root/repo/bench/experiment_main.hpp
