file(REMOVE_RECURSE
  "CMakeFiles/bench_t3_models.dir/bench_t3_models.cpp.o"
  "CMakeFiles/bench_t3_models.dir/bench_t3_models.cpp.o.d"
  "bench_t3_models"
  "bench_t3_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t3_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
