# Empty dependencies file for bench_t3_models.
# This may be replaced when dependencies are built.
