file(REMOVE_RECURSE
  "CMakeFiles/bench_t5_tool_gap.dir/bench_t5_tool_gap.cpp.o"
  "CMakeFiles/bench_t5_tool_gap.dir/bench_t5_tool_gap.cpp.o.d"
  "bench_t5_tool_gap"
  "bench_t5_tool_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t5_tool_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
