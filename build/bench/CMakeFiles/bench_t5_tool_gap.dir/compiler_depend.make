# Empty compiler generated dependencies file for bench_t5_tool_gap.
# This may be replaced when dependencies are built.
