bench/CMakeFiles/bench_t5_tool_gap.dir/bench_t5_tool_gap.cpp.o: \
 /root/repo/bench/bench_t5_tool_gap.cpp /usr/include/stdc-predef.h \
 /root/repo/bench/experiment_main.hpp
