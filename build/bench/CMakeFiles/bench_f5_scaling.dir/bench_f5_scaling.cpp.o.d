bench/CMakeFiles/bench_f5_scaling.dir/bench_f5_scaling.cpp.o: \
 /root/repo/bench/bench_f5_scaling.cpp /usr/include/stdc-predef.h \
 /root/repo/bench/experiment_main.hpp
