file(REMOVE_RECURSE
  "CMakeFiles/bench_f2_parallelism.dir/bench_f2_parallelism.cpp.o"
  "CMakeFiles/bench_f2_parallelism.dir/bench_f2_parallelism.cpp.o.d"
  "bench_f2_parallelism"
  "bench_f2_parallelism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f2_parallelism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
