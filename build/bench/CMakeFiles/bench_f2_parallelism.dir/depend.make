# Empty dependencies file for bench_f2_parallelism.
# This may be replaced when dependencies are built.
