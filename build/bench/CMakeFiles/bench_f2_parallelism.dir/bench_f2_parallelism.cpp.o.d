bench/CMakeFiles/bench_f2_parallelism.dir/bench_f2_parallelism.cpp.o: \
 /root/repo/bench/bench_f2_parallelism.cpp /usr/include/stdc-predef.h \
 /root/repo/bench/experiment_main.hpp
