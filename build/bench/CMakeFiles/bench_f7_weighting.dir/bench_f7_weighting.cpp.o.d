bench/CMakeFiles/bench_f7_weighting.dir/bench_f7_weighting.cpp.o: \
 /root/repo/bench/bench_f7_weighting.cpp /usr/include/stdc-predef.h \
 /root/repo/bench/experiment_main.hpp
