file(REMOVE_RECURSE
  "CMakeFiles/bench_f7_weighting.dir/bench_f7_weighting.cpp.o"
  "CMakeFiles/bench_f7_weighting.dir/bench_f7_weighting.cpp.o.d"
  "bench_f7_weighting"
  "bench_f7_weighting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f7_weighting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
