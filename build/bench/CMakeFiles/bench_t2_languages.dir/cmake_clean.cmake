file(REMOVE_RECURSE
  "CMakeFiles/bench_t2_languages.dir/bench_t2_languages.cpp.o"
  "CMakeFiles/bench_t2_languages.dir/bench_t2_languages.cpp.o.d"
  "bench_t2_languages"
  "bench_t2_languages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t2_languages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
