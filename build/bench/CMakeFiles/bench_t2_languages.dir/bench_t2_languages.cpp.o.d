bench/CMakeFiles/bench_t2_languages.dir/bench_t2_languages.cpp.o: \
 /root/repo/bench/bench_t2_languages.cpp /usr/include/stdc-predef.h \
 /root/repo/bench/experiment_main.hpp
