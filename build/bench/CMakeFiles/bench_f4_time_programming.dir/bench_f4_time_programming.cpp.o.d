bench/CMakeFiles/bench_f4_time_programming.dir/bench_f4_time_programming.cpp.o: \
 /root/repo/bench/bench_f4_time_programming.cpp \
 /usr/include/stdc-predef.h /root/repo/bench/experiment_main.hpp
