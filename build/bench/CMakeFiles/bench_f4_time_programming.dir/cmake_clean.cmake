file(REMOVE_RECURSE
  "CMakeFiles/bench_f4_time_programming.dir/bench_f4_time_programming.cpp.o"
  "CMakeFiles/bench_f4_time_programming.dir/bench_f4_time_programming.cpp.o.d"
  "bench_f4_time_programming"
  "bench_f4_time_programming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f4_time_programming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
