# Empty dependencies file for bench_f4_time_programming.
# This may be replaced when dependencies are built.
