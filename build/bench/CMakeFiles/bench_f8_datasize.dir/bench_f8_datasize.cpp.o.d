bench/CMakeFiles/bench_f8_datasize.dir/bench_f8_datasize.cpp.o: \
 /root/repo/bench/bench_f8_datasize.cpp /usr/include/stdc-predef.h \
 /root/repo/bench/experiment_main.hpp
