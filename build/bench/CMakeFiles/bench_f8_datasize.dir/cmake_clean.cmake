file(REMOVE_RECURSE
  "CMakeFiles/bench_f8_datasize.dir/bench_f8_datasize.cpp.o"
  "CMakeFiles/bench_f8_datasize.dir/bench_f8_datasize.cpp.o.d"
  "bench_f8_datasize"
  "bench_f8_datasize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f8_datasize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
