bench/CMakeFiles/bench_t1_demographics.dir/bench_t1_demographics.cpp.o: \
 /root/repo/bench/bench_t1_demographics.cpp /usr/include/stdc-predef.h \
 /root/repo/bench/experiment_main.hpp
