# Empty dependencies file for bench_t1_demographics.
# This may be replaced when dependencies are built.
