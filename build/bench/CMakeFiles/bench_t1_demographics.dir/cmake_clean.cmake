file(REMOVE_RECURSE
  "CMakeFiles/bench_t1_demographics.dir/bench_t1_demographics.cpp.o"
  "CMakeFiles/bench_t1_demographics.dir/bench_t1_demographics.cpp.o.d"
  "bench_t1_demographics"
  "bench_t1_demographics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t1_demographics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
