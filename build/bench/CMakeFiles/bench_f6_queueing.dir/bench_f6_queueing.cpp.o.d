bench/CMakeFiles/bench_f6_queueing.dir/bench_f6_queueing.cpp.o: \
 /root/repo/bench/bench_f6_queueing.cpp /usr/include/stdc-predef.h \
 /root/repo/bench/experiment_main.hpp
