# Empty compiler generated dependencies file for bench_f6_queueing.
# This may be replaced when dependencies are built.
