file(REMOVE_RECURSE
  "CMakeFiles/bench_f6_queueing.dir/bench_f6_queueing.cpp.o"
  "CMakeFiles/bench_f6_queueing.dir/bench_f6_queueing.cpp.o.d"
  "bench_f6_queueing"
  "bench_f6_queueing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f6_queueing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
