# Empty dependencies file for bench_t7_gpu.
# This may be replaced when dependencies are built.
