file(REMOVE_RECURSE
  "CMakeFiles/bench_t7_gpu.dir/bench_t7_gpu.cpp.o"
  "CMakeFiles/bench_t7_gpu.dir/bench_t7_gpu.cpp.o.d"
  "bench_t7_gpu"
  "bench_t7_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t7_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
