bench/CMakeFiles/bench_t7_gpu.dir/bench_t7_gpu.cpp.o: \
 /root/repo/bench/bench_t7_gpu.cpp /usr/include/stdc-predef.h \
 /root/repo/bench/experiment_main.hpp
