# Empty dependencies file for bench_f1_language_trend.
# This may be replaced when dependencies are built.
