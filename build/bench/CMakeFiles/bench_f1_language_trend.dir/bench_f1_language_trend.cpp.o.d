bench/CMakeFiles/bench_f1_language_trend.dir/bench_f1_language_trend.cpp.o: \
 /root/repo/bench/bench_f1_language_trend.cpp /usr/include/stdc-predef.h \
 /root/repo/bench/experiment_main.hpp
