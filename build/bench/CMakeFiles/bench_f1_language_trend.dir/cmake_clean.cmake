file(REMOVE_RECURSE
  "CMakeFiles/bench_f1_language_trend.dir/bench_f1_language_trend.cpp.o"
  "CMakeFiles/bench_f1_language_trend.dir/bench_f1_language_trend.cpp.o.d"
  "bench_f1_language_trend"
  "bench_f1_language_trend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f1_language_trend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
