bench/CMakeFiles/bench_t4_se_practices.dir/bench_t4_se_practices.cpp.o: \
 /root/repo/bench/bench_t4_se_practices.cpp /usr/include/stdc-predef.h \
 /root/repo/bench/experiment_main.hpp
