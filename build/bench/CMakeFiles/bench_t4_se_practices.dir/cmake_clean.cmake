file(REMOVE_RECURSE
  "CMakeFiles/bench_t4_se_practices.dir/bench_t4_se_practices.cpp.o"
  "CMakeFiles/bench_t4_se_practices.dir/bench_t4_se_practices.cpp.o.d"
  "bench_t4_se_practices"
  "bench_t4_se_practices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t4_se_practices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
