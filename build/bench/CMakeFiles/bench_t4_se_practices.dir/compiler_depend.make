# Empty compiler generated dependencies file for bench_t4_se_practices.
# This may be replaced when dependencies are built.
