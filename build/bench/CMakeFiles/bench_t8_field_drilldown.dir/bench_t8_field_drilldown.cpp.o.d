bench/CMakeFiles/bench_t8_field_drilldown.dir/bench_t8_field_drilldown.cpp.o: \
 /root/repo/bench/bench_t8_field_drilldown.cpp /usr/include/stdc-predef.h \
 /root/repo/bench/experiment_main.hpp
