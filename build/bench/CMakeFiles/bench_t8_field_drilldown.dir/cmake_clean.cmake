file(REMOVE_RECURSE
  "CMakeFiles/bench_t8_field_drilldown.dir/bench_t8_field_drilldown.cpp.o"
  "CMakeFiles/bench_t8_field_drilldown.dir/bench_t8_field_drilldown.cpp.o.d"
  "bench_t8_field_drilldown"
  "bench_t8_field_drilldown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t8_field_drilldown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
