# Empty compiler generated dependencies file for bench_t8_field_drilldown.
# This may be replaced when dependencies are built.
