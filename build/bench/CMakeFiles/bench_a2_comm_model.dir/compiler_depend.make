# Empty compiler generated dependencies file for bench_a2_comm_model.
# This may be replaced when dependencies are built.
