file(REMOVE_RECURSE
  "CMakeFiles/bench_f10_panel.dir/bench_f10_panel.cpp.o"
  "CMakeFiles/bench_f10_panel.dir/bench_f10_panel.cpp.o.d"
  "bench_f10_panel"
  "bench_f10_panel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f10_panel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
