bench/CMakeFiles/bench_f10_panel.dir/bench_f10_panel.cpp.o: \
 /root/repo/bench/bench_f10_panel.cpp /usr/include/stdc-predef.h \
 /root/repo/bench/experiment_main.hpp
