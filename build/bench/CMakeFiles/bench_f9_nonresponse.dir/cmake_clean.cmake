file(REMOVE_RECURSE
  "CMakeFiles/bench_f9_nonresponse.dir/bench_f9_nonresponse.cpp.o"
  "CMakeFiles/bench_f9_nonresponse.dir/bench_f9_nonresponse.cpp.o.d"
  "bench_f9_nonresponse"
  "bench_f9_nonresponse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f9_nonresponse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
