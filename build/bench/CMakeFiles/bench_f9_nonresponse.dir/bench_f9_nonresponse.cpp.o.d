bench/CMakeFiles/bench_f9_nonresponse.dir/bench_f9_nonresponse.cpp.o: \
 /root/repo/bench/bench_f9_nonresponse.cpp /usr/include/stdc-predef.h \
 /root/repo/bench/experiment_main.hpp
