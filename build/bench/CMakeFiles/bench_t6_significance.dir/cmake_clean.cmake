file(REMOVE_RECURSE
  "CMakeFiles/bench_t6_significance.dir/bench_t6_significance.cpp.o"
  "CMakeFiles/bench_t6_significance.dir/bench_t6_significance.cpp.o.d"
  "bench_t6_significance"
  "bench_t6_significance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t6_significance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
