# Empty dependencies file for bench_t6_significance.
# This may be replaced when dependencies are built.
