bench/CMakeFiles/bench_t6_significance.dir/bench_t6_significance.cpp.o: \
 /root/repo/bench/bench_t6_significance.cpp /usr/include/stdc-predef.h \
 /root/repo/bench/experiment_main.hpp
