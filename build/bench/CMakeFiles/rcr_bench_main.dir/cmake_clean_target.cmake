file(REMOVE_RECURSE
  "librcr_bench_main.a"
)
