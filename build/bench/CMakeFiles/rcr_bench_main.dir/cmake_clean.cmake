file(REMOVE_RECURSE
  "CMakeFiles/rcr_bench_main.dir/experiment_main.cpp.o"
  "CMakeFiles/rcr_bench_main.dir/experiment_main.cpp.o.d"
  "librcr_bench_main.a"
  "librcr_bench_main.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcr_bench_main.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
