# Empty compiler generated dependencies file for rcr_bench_main.
# This may be replaced when dependencies are built.
