file(REMOVE_RECURSE
  "CMakeFiles/cluster_queueing.dir/cluster_queueing.cpp.o"
  "CMakeFiles/cluster_queueing.dir/cluster_queueing.cpp.o.d"
  "cluster_queueing"
  "cluster_queueing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_queueing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
