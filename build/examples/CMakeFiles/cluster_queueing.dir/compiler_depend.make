# Empty compiler generated dependencies file for cluster_queueing.
# This may be replaced when dependencies are built.
