# Empty compiler generated dependencies file for survey_planning.
# This may be replaced when dependencies are built.
