file(REMOVE_RECURSE
  "CMakeFiles/survey_planning.dir/survey_planning.cpp.o"
  "CMakeFiles/survey_planning.dir/survey_planning.cpp.o.d"
  "survey_planning"
  "survey_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/survey_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
