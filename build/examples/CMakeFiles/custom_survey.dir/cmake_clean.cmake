file(REMOVE_RECURSE
  "CMakeFiles/custom_survey.dir/custom_survey.cpp.o"
  "CMakeFiles/custom_survey.dir/custom_survey.cpp.o.d"
  "custom_survey"
  "custom_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
