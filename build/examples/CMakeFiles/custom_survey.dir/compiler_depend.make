# Empty compiler generated dependencies file for custom_survey.
# This may be replaced when dependencies are built.
