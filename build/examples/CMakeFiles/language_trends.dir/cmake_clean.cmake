file(REMOVE_RECURSE
  "CMakeFiles/language_trends.dir/language_trends.cpp.o"
  "CMakeFiles/language_trends.dir/language_trends.cpp.o.d"
  "language_trends"
  "language_trends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/language_trends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
