# Empty dependencies file for language_trends.
# This may be replaced when dependencies are built.
