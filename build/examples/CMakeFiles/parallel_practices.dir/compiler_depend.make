# Empty compiler generated dependencies file for parallel_practices.
# This may be replaced when dependencies are built.
