file(REMOVE_RECURSE
  "CMakeFiles/parallel_practices.dir/parallel_practices.cpp.o"
  "CMakeFiles/parallel_practices.dir/parallel_practices.cpp.o.d"
  "parallel_practices"
  "parallel_practices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_practices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
