file(REMOVE_RECURSE
  "CMakeFiles/stats_contingency_test.dir/stats_contingency_test.cpp.o"
  "CMakeFiles/stats_contingency_test.dir/stats_contingency_test.cpp.o.d"
  "stats_contingency_test"
  "stats_contingency_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_contingency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
