file(REMOVE_RECURSE
  "CMakeFiles/stats_adjust_test.dir/stats_adjust_test.cpp.o"
  "CMakeFiles/stats_adjust_test.dir/stats_adjust_test.cpp.o.d"
  "stats_adjust_test"
  "stats_adjust_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_adjust_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
