# Empty compiler generated dependencies file for stats_adjust_test.
# This may be replaced when dependencies are built.
