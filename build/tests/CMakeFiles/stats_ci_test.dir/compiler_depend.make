# Empty compiler generated dependencies file for stats_ci_test.
# This may be replaced when dependencies are built.
