file(REMOVE_RECURSE
  "CMakeFiles/stats_ci_test.dir/stats_ci_test.cpp.o"
  "CMakeFiles/stats_ci_test.dir/stats_ci_test.cpp.o.d"
  "stats_ci_test"
  "stats_ci_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_ci_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
