# Empty dependencies file for stats_weighted_test.
# This may be replaced when dependencies are built.
