file(REMOVE_RECURSE
  "CMakeFiles/stats_weighted_test.dir/stats_weighted_test.cpp.o"
  "CMakeFiles/stats_weighted_test.dir/stats_weighted_test.cpp.o.d"
  "stats_weighted_test"
  "stats_weighted_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_weighted_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
