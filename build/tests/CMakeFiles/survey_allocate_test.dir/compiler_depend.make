# Empty compiler generated dependencies file for survey_allocate_test.
# This may be replaced when dependencies are built.
