file(REMOVE_RECURSE
  "CMakeFiles/survey_allocate_test.dir/survey_allocate_test.cpp.o"
  "CMakeFiles/survey_allocate_test.dir/survey_allocate_test.cpp.o.d"
  "survey_allocate_test"
  "survey_allocate_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/survey_allocate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
