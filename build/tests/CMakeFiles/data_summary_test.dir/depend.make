# Empty dependencies file for data_summary_test.
# This may be replaced when dependencies are built.
