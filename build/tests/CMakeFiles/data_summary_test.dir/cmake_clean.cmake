file(REMOVE_RECURSE
  "CMakeFiles/data_summary_test.dir/data_summary_test.cpp.o"
  "CMakeFiles/data_summary_test.dir/data_summary_test.cpp.o.d"
  "data_summary_test"
  "data_summary_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_summary_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
