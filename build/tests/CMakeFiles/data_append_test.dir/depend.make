# Empty dependencies file for data_append_test.
# This may be replaced when dependencies are built.
