file(REMOVE_RECURSE
  "CMakeFiles/data_append_test.dir/data_append_test.cpp.o"
  "CMakeFiles/data_append_test.dir/data_append_test.cpp.o.d"
  "data_append_test"
  "data_append_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_append_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
