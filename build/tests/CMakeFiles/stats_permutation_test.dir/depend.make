# Empty dependencies file for stats_permutation_test.
# This may be replaced when dependencies are built.
