file(REMOVE_RECURSE
  "CMakeFiles/stats_permutation_test.dir/stats_permutation_test.cpp.o"
  "CMakeFiles/stats_permutation_test.dir/stats_permutation_test.cpp.o.d"
  "stats_permutation_test"
  "stats_permutation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_permutation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
