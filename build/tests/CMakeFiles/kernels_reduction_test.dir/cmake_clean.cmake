file(REMOVE_RECURSE
  "CMakeFiles/kernels_reduction_test.dir/kernels_reduction_test.cpp.o"
  "CMakeFiles/kernels_reduction_test.dir/kernels_reduction_test.cpp.o.d"
  "kernels_reduction_test"
  "kernels_reduction_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernels_reduction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
