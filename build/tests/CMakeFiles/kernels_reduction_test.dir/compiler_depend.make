# Empty compiler generated dependencies file for kernels_reduction_test.
# This may be replaced when dependencies are built.
