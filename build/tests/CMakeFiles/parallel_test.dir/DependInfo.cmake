
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/parallel_test.cpp" "tests/CMakeFiles/parallel_test.dir/parallel_test.cpp.o" "gcc" "tests/CMakeFiles/parallel_test.dir/parallel_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rcr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/rcr_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/trend/CMakeFiles/rcr_trend.dir/DependInfo.cmake"
  "/root/repo/build/src/survey/CMakeFiles/rcr_survey.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/rcr_data.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/rcr_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rcr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rcr_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/rcr_report.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/rcr_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rcr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
