# Empty dependencies file for survey_impute_test.
# This may be replaced when dependencies are built.
