file(REMOVE_RECURSE
  "CMakeFiles/survey_impute_test.dir/survey_impute_test.cpp.o"
  "CMakeFiles/survey_impute_test.dir/survey_impute_test.cpp.o.d"
  "survey_impute_test"
  "survey_impute_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/survey_impute_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
