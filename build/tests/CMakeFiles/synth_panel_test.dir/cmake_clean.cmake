file(REMOVE_RECURSE
  "CMakeFiles/synth_panel_test.dir/synth_panel_test.cpp.o"
  "CMakeFiles/synth_panel_test.dir/synth_panel_test.cpp.o.d"
  "synth_panel_test"
  "synth_panel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synth_panel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
