# Empty dependencies file for synth_panel_test.
# This may be replaced when dependencies are built.
