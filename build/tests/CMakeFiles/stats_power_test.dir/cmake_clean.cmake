file(REMOVE_RECURSE
  "CMakeFiles/stats_power_test.dir/stats_power_test.cpp.o"
  "CMakeFiles/stats_power_test.dir/stats_power_test.cpp.o.d"
  "stats_power_test"
  "stats_power_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_power_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
