# Empty dependencies file for stats_power_test.
# This may be replaced when dependencies are built.
