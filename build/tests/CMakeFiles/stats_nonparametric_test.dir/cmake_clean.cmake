file(REMOVE_RECURSE
  "CMakeFiles/stats_nonparametric_test.dir/stats_nonparametric_test.cpp.o"
  "CMakeFiles/stats_nonparametric_test.dir/stats_nonparametric_test.cpp.o.d"
  "stats_nonparametric_test"
  "stats_nonparametric_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_nonparametric_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
