# Empty dependencies file for stats_nonparametric_test.
# This may be replaced when dependencies are built.
