file(REMOVE_RECURSE
  "CMakeFiles/synth_nonresponse_test.dir/synth_nonresponse_test.cpp.o"
  "CMakeFiles/synth_nonresponse_test.dir/synth_nonresponse_test.cpp.o.d"
  "synth_nonresponse_test"
  "synth_nonresponse_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synth_nonresponse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
