# Empty dependencies file for stats_special_test.
# This may be replaced when dependencies are built.
