# Empty compiler generated dependencies file for sim_policies_test.
# This may be replaced when dependencies are built.
