// The serving determinism contract, pinned end to end: a served result
// body is byte-identical to encoding a cold direct QueryEngine run of the
// same spec on the same snapshot — for thread counts 0/1/2/8, forced-scalar
// vs native SIMD, hit and miss cache paths, and any batch composition.
// Plus the concurrency semantics that cannot be left to chance: N identical
// concurrent misses collapse into ONE engine pass (single-flight), distinct
// concurrent misses fold into ONE fused batch, and overload is refused with
// an explicit kShed response rather than unbounded queueing.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <functional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "data/table.hpp"
#include "obs/metrics.hpp"
#include "parallel/thread_pool.hpp"
#include "query/engine.hpp"
#include "serve/cache.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/transport.hpp"
#include "simd/dispatch.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rcr::serve {
namespace {

constexpr std::uint64_t kEpoch = 7;

// field (5 categories) x career (4) x langs (8 options) x score x w —
// 9000 rows, multi-shard at the engine's 4096-row grain, with per-column
// missingness and full-mantissa weights so the weighted paths exercise the
// engine's deterministic-reassociation merge.
data::Table make_table(std::size_t rows = 9000) {
  const std::vector<std::string> fields = {"f0", "f1", "f2", "f3", "f4"};
  const std::vector<std::string> careers = {"c0", "c1", "c2", "c3"};
  std::vector<std::string> langs;
  for (int o = 0; o < 8; ++o) langs.push_back("L" + std::to_string(o));

  data::Table t;
  auto& field = t.add_categorical("field", fields);
  auto& career = t.add_categorical("career", careers);
  auto& lang_col = t.add_multiselect("langs", langs);
  auto& score = t.add_numeric("score");
  auto& w = t.add_numeric("w");

  Rng rng(2718);
  for (std::size_t i = 0; i < rows; ++i) {
    if (rng.next_double() < 0.10) field.push_missing();
    else field.push(fields[rng.next_below(5)]);
    if (rng.next_double() < 0.07) career.push_missing();
    else career.push(careers[rng.next_below(4)]);
    if (rng.next_double() < 0.12) lang_col.push_missing();
    else lang_col.push_mask(rng.next_u64() & 0xFFULL);
    if (rng.next_double() < 0.08) score.push_missing();
    else score.push(rng.normal() * 10.0 + rng.next_double());
    if (rng.next_double() < 0.05) w.push_missing();
    else w.push(rng.next_double() * 3.0 + 0.5);
  }
  return t;
}

const data::Table& shared_table() {
  static const data::Table t = make_table();
  return t;
}

QuerySpec spec_of(QueryKind kind, std::string a, std::string b = "",
                  std::string weight = "", double confidence = 0.95) {
  QuerySpec s;
  s.kind = kind;
  s.a = std::move(a);
  s.b = std::move(b);
  s.weight = std::move(weight);
  s.confidence = confidence;
  return s;
}

// One spec per query kind (the weighted-span kind has no wire form).
std::vector<QuerySpec> all_kind_specs() {
  return {
      spec_of(QueryKind::kCrosstab, "field", "career"),
      spec_of(QueryKind::kCrosstab, "field", "career", "w"),
      spec_of(QueryKind::kCrosstabMultiselect, "field", "langs", "w"),
      spec_of(QueryKind::kCategoryShares, "career"),
      spec_of(QueryKind::kOptionShares, "langs", "", "", 0.90),
      spec_of(QueryKind::kNumericSummary, "score"),
      spec_of(QueryKind::kGroupAnswered, "field", "score"),
  };
}

// The ground truth every served byte is pinned against: a cold, serial,
// single-query engine run.
std::vector<std::uint8_t> cold_engine_body(const data::Table& t,
                                           const QuerySpec& raw) {
  const QuerySpec spec = canonicalize(raw);
  query::QueryEngine engine(t);
  const auto id = register_spec(engine, spec);
  engine.run();
  return encode_result_body(engine, id, spec);
}

std::uint64_t engine_runs() {
#ifndef RCR_OBS_DISABLED
  return obs::registry().counter("query.runs").total();
#else
  return 0;
#endif
}

bool wait_until(const std::function<bool()>& done) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!done()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::yield();
  }
  return true;
}

// --- fingerprints and canonicalization --------------------------------------

TEST(ServeFingerprintTest, IgnoredFieldsDoNotPerturbTheKey) {
  // A share query ignores weight and b; a crosstab ignores confidence.
  const auto base = spec_of(QueryKind::kOptionShares, "langs");
  auto noisy = base;
  noisy.b = "career";
  noisy.weight = "w";
  EXPECT_EQ(fingerprint(kEpoch, base), fingerprint(kEpoch, noisy));
  EXPECT_EQ(canonical_bytes(base), canonical_bytes(noisy));

  const auto ct = spec_of(QueryKind::kCrosstab, "field", "career");
  auto ct_conf = ct;
  ct_conf.confidence = 0.5;
  EXPECT_EQ(fingerprint(kEpoch, ct), fingerprint(kEpoch, ct_conf));
}

TEST(ServeFingerprintTest, EverySignificantFieldChangesTheKey) {
  const auto base = spec_of(QueryKind::kCrosstab, "field", "career");
  const auto key = fingerprint(kEpoch, base);

  EXPECT_NE(key, fingerprint(kEpoch + 1, base));  // epoch seeds the hash
  auto other = base;
  other.kind = QueryKind::kCrosstabMultiselect;
  EXPECT_NE(key, fingerprint(kEpoch, other));
  other = base;
  other.a = "career";
  EXPECT_NE(key, fingerprint(kEpoch, other));
  other = base;
  other.b = "field";
  EXPECT_NE(key, fingerprint(kEpoch, other));
  other = base;
  other.weight = "w";
  EXPECT_NE(key, fingerprint(kEpoch, other));

  // Confidence is significant on share kinds.
  const auto cs = spec_of(QueryKind::kCategoryShares, "career", "", "", 0.95);
  auto cs90 = cs;
  cs90.confidence = 0.90;
  EXPECT_NE(fingerprint(kEpoch, cs), fingerprint(kEpoch, cs90));
}

// Satellite: the cache key and the served bytes are invariant across
// engine thread counts AND across SIMD dispatch (forced scalar vs native).
TEST(ServeFingerprintTest, KeyAndBytesStableAcrossThreadsAndIsa) {
  const auto specs = all_kind_specs();

  struct Observed {
    std::vector<std::uint64_t> keys;
    std::vector<std::vector<std::uint8_t>> bodies;
  };
  const auto observe = [&](parallel::ThreadPool* pool) {
    ServerConfig cfg;
    cfg.pool = pool;
    Server server(cfg);
    server.register_snapshot(kEpoch, shared_table());
    Observed got;
    for (const auto& spec : specs) {
      const Response resp = server.handle({kEpoch, spec});
      EXPECT_EQ(resp.type, MsgType::kResult);
      got.keys.push_back(resp.fingerprint);
      got.bodies.push_back(resp.body);
    }
    return got;
  };

  const Observed baseline = observe(nullptr);  // serial, native ISA
  for (const std::size_t threads : {1u, 2u, 8u}) {
    parallel::ThreadPool pool(threads);
    const Observed got = observe(&pool);
    EXPECT_EQ(got.keys, baseline.keys) << threads << " threads";
    EXPECT_EQ(got.bodies, baseline.bodies) << threads << " threads";
  }
  {
    simd::force_isa(simd::Isa::kScalar);
    const Observed scalar = observe(nullptr);
    simd::clear_isa_override();
    EXPECT_EQ(scalar.keys, baseline.keys);
    EXPECT_EQ(scalar.bodies, baseline.bodies);
  }
}

// --- the byte-identity contract ---------------------------------------------

TEST(ServeTest, ServedBytesMatchColdEngineOnMissAndHit) {
  Server server;
  server.register_snapshot(kEpoch, shared_table());

  for (const auto& spec : all_kind_specs()) {
    SCOPED_TRACE("kind " + std::to_string(static_cast<int>(spec.kind)));
    const auto want = cold_engine_body(shared_table(), spec);

    const Response miss = server.handle({kEpoch, spec});
    ASSERT_EQ(miss.type, MsgType::kResult);
    EXPECT_EQ(miss.body, want);

    const auto runs_before = engine_runs();
    const Response hit = server.handle({kEpoch, spec});
    ASSERT_EQ(hit.type, MsgType::kResult);
    EXPECT_EQ(hit.body, want);                   // cached bytes ARE the bytes
    EXPECT_EQ(hit.fingerprint, miss.fingerprint);
    EXPECT_EQ(engine_runs(), runs_before);       // a hit never runs the engine
  }
  EXPECT_EQ(server.cache_size(), all_kind_specs().size());
}

TEST(ServeTest, DecodedResultsMatchTheEngineForEveryKind) {
  const data::Table& t = shared_table();
  query::QueryEngine engine(t);
  const auto ct_id = engine.add_crosstab("field", "career");
  const auto ns_id = engine.add_numeric_summary("score");
  const auto os_id = engine.add_option_shares("langs", 0.90);
  const auto ga_id = engine.add_group_answered("field", "score");
  engine.run();

  Server server;
  server.register_snapshot(kEpoch, t);

  const auto fetch = [&](const QuerySpec& spec) {
    const Response resp = server.handle({kEpoch, spec});
    EXPECT_EQ(resp.type, MsgType::kResult);
    return decode_result_body(resp.body);
  };

  const auto ct = fetch(spec_of(QueryKind::kCrosstab, "field", "career"));
  EXPECT_EQ(ct.crosstab.row_labels, engine.crosstab(ct_id).row_labels);
  EXPECT_EQ(ct.crosstab.col_labels, engine.crosstab(ct_id).col_labels);
  for (std::size_t r = 0; r < ct.crosstab.counts.rows(); ++r)
    for (std::size_t c = 0; c < ct.crosstab.counts.cols(); ++c)
      EXPECT_EQ(ct.crosstab.counts.at(r, c),
                engine.crosstab(ct_id).counts.at(r, c));

  const auto ns = fetch(spec_of(QueryKind::kNumericSummary, "score"));
  EXPECT_EQ(ns.numeric.count, engine.numeric(ns_id).count);
  EXPECT_EQ(ns.numeric.sum, engine.numeric(ns_id).sum);
  EXPECT_EQ(ns.numeric.min, engine.numeric(ns_id).min);
  EXPECT_EQ(ns.numeric.max, engine.numeric(ns_id).max);

  const auto os =
      fetch(spec_of(QueryKind::kOptionShares, "langs", "", "", 0.90));
  ASSERT_EQ(os.shares.size(), engine.shares(os_id).size());
  for (std::size_t o = 0; o < os.shares.size(); ++o) {
    EXPECT_EQ(os.shares[o].label, engine.shares(os_id)[o].label);
    EXPECT_EQ(os.shares[o].count, engine.shares(os_id)[o].count);
    EXPECT_EQ(os.shares[o].share.estimate,
              engine.shares(os_id)[o].share.estimate);
    EXPECT_EQ(os.shares[o].share.lo, engine.shares(os_id)[o].share.lo);
    EXPECT_EQ(os.shares[o].share.hi, engine.shares(os_id)[o].share.hi);
  }

  const auto ga = fetch(spec_of(QueryKind::kGroupAnswered, "field", "score"));
  EXPECT_EQ(ga.group_counts, engine.group_answered(ga_id));
}

// --- single-flight and batch folding ----------------------------------------

#ifndef RCR_OBS_DISABLED

TEST(ServeConcurrencyTest, IdenticalConcurrentMissesCoalesceIntoOneRun) {
  Server server;
  server.register_snapshot(kEpoch, shared_table());
  const auto spec = spec_of(QueryKind::kCrosstab, "field", "career", "w");
  const auto want = cold_engine_body(shared_table(), spec);

  auto& coalesced = obs::registry().counter("serve.coalesced");
  const auto coalesced_before = coalesced.total();
  const auto runs_before = engine_runs();

  constexpr std::size_t kClients = 8;
  server.hold_batches(true);
  std::vector<Response> responses(kClients);
  std::vector<std::thread> clients;
  for (std::size_t i = 0; i < kClients; ++i) {
    clients.emplace_back(
        [&, i] { responses[i] = server.handle({kEpoch, spec}); });
  }
  // All followers attached to the leader's flight; nothing has run yet.
  ASSERT_TRUE(wait_until(
      [&] { return coalesced.total() == coalesced_before + kClients - 1; }));
  EXPECT_EQ(engine_runs(), runs_before);
  server.hold_batches(false);
  for (auto& c : clients) c.join();

  EXPECT_EQ(engine_runs(), runs_before + 1);  // N misses, ONE engine pass
  for (const auto& resp : responses) {
    EXPECT_EQ(resp.type, MsgType::kResult);
    EXPECT_EQ(resp.body, want);
  }
}

TEST(ServeConcurrencyTest, DistinctConcurrentMissesFoldIntoOneFusedBatch) {
  Server server;
  server.register_snapshot(kEpoch, shared_table());
  const auto specs = all_kind_specs();

  auto& batches = obs::registry().counter("serve.batches");
  auto& batch_queries = obs::registry().counter("serve.batch.queries");
  const auto batches_before = batches.total();
  const auto batch_queries_before = batch_queries.total();
  const auto runs_before = engine_runs();

  server.hold_batches(true);
  std::vector<Response> responses(specs.size());
  std::vector<std::thread> clients;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    clients.emplace_back(
        [&, i] { responses[i] = server.handle({kEpoch, specs[i]}); });
  }
  // Every distinct miss is enqueued for the epoch's next batch.
  ASSERT_TRUE(wait_until(
      [&] { return server.pending_queries(kEpoch) == specs.size(); }));
  server.hold_batches(false);
  for (auto& c : clients) c.join();

  // One fused engine pass answered all of them.
  EXPECT_EQ(engine_runs(), runs_before + 1);
  EXPECT_EQ(batches.total(), batches_before + 1);
  EXPECT_EQ(batch_queries.total(), batch_queries_before + specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    SCOPED_TRACE("spec " + std::to_string(i));
    EXPECT_EQ(responses[i].type, MsgType::kResult);
    // Batch composition cannot perturb the bytes.
    EXPECT_EQ(responses[i].body, cold_engine_body(shared_table(), specs[i]));
  }
}

TEST(ServeConcurrencyTest, BadSpecInABatchFailsAloneWithoutPoisoningIt) {
  Server server;
  server.register_snapshot(kEpoch, shared_table());
  const auto good = spec_of(QueryKind::kNumericSummary, "score");
  const auto bad = spec_of(QueryKind::kNumericSummary, "no_such_column");

  server.hold_batches(true);
  Response good_resp, bad_resp;
  std::thread a([&] { good_resp = server.handle({kEpoch, good}); });
  std::thread b([&] { bad_resp = server.handle({kEpoch, bad}); });
  ASSERT_TRUE(wait_until([&] { return server.pending_queries(kEpoch) == 2; }));
  server.hold_batches(false);
  a.join();
  b.join();

  EXPECT_EQ(good_resp.type, MsgType::kResult);
  EXPECT_EQ(good_resp.body, cold_engine_body(shared_table(), good));
  EXPECT_EQ(bad_resp.type, MsgType::kError);
  EXPECT_FALSE(decode_error_body(bad_resp.body).empty());
}

// --- admission control -------------------------------------------------------

TEST(ServeAdmissionTest, OverloadShedsWithExplicitBackpressure) {
  ServerConfig cfg;
  cfg.max_admitted = 2;
  cfg.min_admitted = 1;
  cfg.slo_window = 1u << 20;  // keep AIMD out of this test
  Server server(cfg);
  server.register_snapshot(kEpoch, shared_table());

  auto& shed = obs::registry().counter("serve.shed");
  const auto shed_before = shed.total();

  server.hold_batches(true);
  Response r1, r2;
  std::thread a([&] {
    r1 = server.handle({kEpoch, spec_of(QueryKind::kNumericSummary, "score")});
  });
  std::thread b([&] {
    r2 = server.handle({kEpoch, spec_of(QueryKind::kCategoryShares, "career")});
  });
  ASSERT_TRUE(wait_until([&] { return server.pending_queries(kEpoch) == 2; }));

  // The miss budget (2) is spent: the next miss is refused immediately,
  // with the server's own view of its saturation in the body.
  const Response refused =
      server.handle({kEpoch, spec_of(QueryKind::kOptionShares, "langs")});
  EXPECT_EQ(refused.type, MsgType::kShed);
  const ShedInfo info = decode_shed_body(refused.body);
  EXPECT_GE(info.queue_depth, 2u);
  EXPECT_EQ(info.admit_limit, 2u);
  EXPECT_EQ(shed.total(), shed_before + 1);

  // A cache hit is still served while saturated (hits bypass admission)...
  server.hold_batches(false);
  a.join();
  b.join();
  EXPECT_EQ(r1.type, MsgType::kResult);
  EXPECT_EQ(r2.type, MsgType::kResult);
  const Response hit =
      server.handle({kEpoch, spec_of(QueryKind::kNumericSummary, "score")});
  EXPECT_EQ(hit.type, MsgType::kResult);

  // ...and once the queue drains, the shed spec is admitted and served.
  const Response retried =
      server.handle({kEpoch, spec_of(QueryKind::kOptionShares, "langs")});
  EXPECT_EQ(retried.type, MsgType::kResult);
}

TEST(ServeAdmissionTest, AimdHalvesToTheFloorWhenP99ExceedsTarget) {
  ServerConfig cfg;
  cfg.slo_p99_ms = 1e-9;  // any real latency violates the target
  cfg.slo_window = 4;
  cfg.max_admitted = 16;
  cfg.min_admitted = 1;
  Server server(cfg);
  server.register_snapshot(kEpoch, shared_table());
  ASSERT_EQ(server.admit_limit(), 16u);

  const auto spec = spec_of(QueryKind::kNumericSummary, "score");
  const auto drive_window = [&] {
    for (std::size_t i = 0; i < cfg.slo_window; ++i) {
      ASSERT_EQ(server.handle({kEpoch, spec}).type, MsgType::kResult);
    }
  };

  drive_window();
  EXPECT_EQ(server.admit_limit(), 8u);
  EXPECT_GT(server.window_p99_ms(), 0.0);
  drive_window();
  EXPECT_EQ(server.admit_limit(), 4u);
  drive_window();
  drive_window();
  EXPECT_EQ(server.admit_limit(), 1u);
  drive_window();
  EXPECT_EQ(server.admit_limit(), 1u);  // the floor keeps the server live
}

TEST(ServeAdmissionTest, MeetingTheSloHoldsTheCeiling) {
  ServerConfig cfg;
  cfg.slo_p99_ms = 1e9;  // unmissable target
  cfg.slo_window = 2;
  cfg.max_admitted = 8;
  Server server(cfg);
  server.register_snapshot(kEpoch, shared_table());

  const auto spec = spec_of(QueryKind::kCategoryShares, "career");
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(server.handle({kEpoch, spec}).type, MsgType::kResult);
    EXPECT_EQ(server.admit_limit(), 8u);  // +1 recovery clamps at max
  }
}

#endif  // RCR_OBS_DISABLED

// --- snapshots and the cache -------------------------------------------------

TEST(ServeTest, UnknownEpochAndDuplicateRegistrationAreErrors) {
  Server server;
  server.register_snapshot(kEpoch, shared_table());
  EXPECT_THROW(server.register_snapshot(kEpoch, shared_table()), Error);

  const Response resp =
      server.handle({kEpoch + 1, spec_of(QueryKind::kNumericSummary, "score")});
  EXPECT_EQ(resp.type, MsgType::kError);
  EXPECT_NE(decode_error_body(resp.body).find("unknown snapshot epoch"),
            std::string::npos);
}

TEST(ServeTest, RetiringASnapshotDropsItsCachedResults) {
  Server server;
  server.register_snapshot(kEpoch, shared_table());
  server.register_snapshot(kEpoch + 1, shared_table());

  const auto spec = spec_of(QueryKind::kCrosstab, "field", "career");
  ASSERT_EQ(server.handle({kEpoch, spec}).type, MsgType::kResult);
  ASSERT_EQ(server.handle({kEpoch + 1, spec}).type, MsgType::kResult);
  EXPECT_EQ(server.cache_size(), 2u);

  server.retire_snapshot(kEpoch);
  EXPECT_EQ(server.epochs(), std::vector<std::uint64_t>{kEpoch + 1});
  EXPECT_EQ(server.cache_size(), 1u);  // only the retired epoch's entry fell
  EXPECT_EQ(server.handle({kEpoch, spec}).type, MsgType::kError);
  EXPECT_EQ(server.handle({kEpoch + 1, spec}).type, MsgType::kResult);
}

// --- delta epochs ------------------------------------------------------------

TEST(ServeDeltaTest, AppendDeltaValidatesItsEpochs) {
  Server server;
  server.register_snapshot(kEpoch, shared_table());
  const data::Table block = make_table(100);
  EXPECT_THROW(server.append_delta(kEpoch + 5, kEpoch + 6, block), Error);
  EXPECT_THROW(server.append_delta(kEpoch, kEpoch, block), Error);
}

// The delta contract, across thread counts: after K appended blocks, every
// spec the base epoch served comes back from the new epoch as a cache hit
// (no engine run — the refresh pre-warmed it) with bytes equal to a cold
// direct engine run on the fully-merged table, and the base epoch keeps
// serving its own consistent cut.
TEST(ServeDeltaTest, RefreshedEpochsMatchColdEngineOnTheMergedTable) {
  const std::size_t base_rows = 9000, block_rows = 1000;
  const data::Table full = make_table(12000);
  const data::Table base = full.slice(0, base_rows);
  const auto specs = all_kind_specs();

  const auto run_scenario = [&](parallel::ThreadPool* pool) {
    ServerConfig cfg;
    cfg.pool = pool;
    Server server(cfg);
    server.register_snapshot(kEpoch, base);
    // Serve every spec once so the base epoch records them.
    std::vector<std::vector<std::uint8_t>> base_bodies;
    for (const auto& spec : specs) {
      const Response resp = server.handle({kEpoch, spec});
      EXPECT_EQ(resp.type, MsgType::kResult);
      base_bodies.push_back(resp.body);
    }

    std::vector<std::vector<std::uint8_t>> delta_bodies;
    for (std::uint64_t k = 1; k <= 3; ++k) {
      const std::size_t hi = base_rows + k * block_rows;
      const std::size_t refreshed = server.append_delta(
          kEpoch + k - 1, kEpoch + k, full.slice(hi - block_rows, hi));
      EXPECT_EQ(refreshed, specs.size()) << "delta " << k;
      for (const auto& spec : specs) {
        const auto runs_before = engine_runs();
        const Response resp = server.handle({kEpoch + k, spec});
        EXPECT_EQ(resp.type, MsgType::kResult);
        EXPECT_EQ(engine_runs(), runs_before)
            << "refresh should pre-warm the cache, delta " << k;
        delta_bodies.push_back(resp.body);
      }
    }

    // The base epoch still serves its original cut.
    for (std::size_t i = 0; i < specs.size(); ++i) {
      const Response resp = server.handle({kEpoch, specs[i]});
      EXPECT_EQ(resp.type, MsgType::kResult);
      EXPECT_EQ(resp.body, base_bodies[i]);
    }
    return delta_bodies;
  };

  // Serial reference pinned against the cold single-spec engine...
  const auto serial = run_scenario(nullptr);
  std::size_t at = 0;
  for (std::uint64_t k = 1; k <= 3; ++k) {
    const data::Table merged = full.slice(0, base_rows + k * block_rows);
    for (const auto& spec : specs) {
      SCOPED_TRACE("delta " + std::to_string(k));
      EXPECT_EQ(serial[at++], cold_engine_body(merged, spec));
    }
  }
  // ...and thread counts cannot reach the bytes.
  for (const std::size_t threads : {2u, 8u}) {
    parallel::ThreadPool pool(threads);
    EXPECT_EQ(run_scenario(&pool), serial) << threads << " threads";
  }
}

// A spec first requested on a delta epoch misses into the cold batch path
// (correct bytes immediately) and joins the refresh set at the next delta.
TEST(ServeDeltaTest, LateSpecBackfillsColdThenJoinsTheLineage) {
  const data::Table full = make_table(11000);
  Server server;
  server.register_snapshot(kEpoch, full.slice(0, 9000));

  const auto early = spec_of(QueryKind::kCrosstab, "field", "career", "w");
  const auto late = spec_of(QueryKind::kOptionShares, "langs", "", "", 0.90);
  ASSERT_EQ(server.handle({kEpoch, early}).type, MsgType::kResult);

  // Delta 1 refreshes only the spec the base epoch served.
  EXPECT_EQ(server.append_delta(kEpoch, kEpoch + 1, full.slice(9000, 10000)),
            1u);
  const data::Table merged1 = full.slice(0, 10000);
  EXPECT_EQ(server.handle({kEpoch + 1, early}).body,
            cold_engine_body(merged1, early));
  // The late spec misses cold and still serves the correct cut.
  const Response first_late = server.handle({kEpoch + 1, late});
  ASSERT_EQ(first_late.type, MsgType::kResult);
  EXPECT_EQ(first_late.body, cold_engine_body(merged1, late));

  // Delta 2 refreshes both: the late spec joined the lineage.
  EXPECT_EQ(
      server.append_delta(kEpoch + 1, kEpoch + 2, full.slice(10000, 11000)),
      2u);
  const data::Table merged2 = full.slice(0, 11000);
  const auto runs_before = engine_runs();
  const Response early2 = server.handle({kEpoch + 2, early});
  const Response late2 = server.handle({kEpoch + 2, late});
  EXPECT_EQ(engine_runs(), runs_before);  // both were pre-warmed
  EXPECT_EQ(early2.body, cold_engine_body(merged2, early));
  EXPECT_EQ(late2.body, cold_engine_body(merged2, late));
}

// Retiring a delta's base epoch leaves the new epoch fully servable (the
// lineage rides with the head, and the head owns its own table copy).
TEST(ServeDeltaTest, RetiringTheBaseKeepsTheDeltaEpochLive) {
  const data::Table full = make_table(9500);
  Server server;
  server.register_snapshot(kEpoch, full.slice(0, 9000));
  const auto spec = spec_of(QueryKind::kCrosstabMultiselect, "field", "langs",
                            "w");
  ASSERT_EQ(server.handle({kEpoch, spec}).type, MsgType::kResult);
  ASSERT_EQ(server.append_delta(kEpoch, kEpoch + 1, full.slice(9000, 9500)),
            1u);

  server.retire_snapshot(kEpoch);
  EXPECT_EQ(server.epochs(), std::vector<std::uint64_t>{kEpoch + 1});
  EXPECT_EQ(server.handle({kEpoch, spec}).type, MsgType::kError);
  EXPECT_EQ(server.handle({kEpoch + 1, spec}).body,
            cold_engine_body(full, spec));
  // The lineage survives retirement of its ancestor: the next delta still
  // refreshes incrementally on top of the head epoch.
  const data::Table more = make_table(9750).slice(9500, 9750);
  EXPECT_EQ(server.append_delta(kEpoch + 1, kEpoch + 2, more), 1u);
  data::Table merged = full;
  merged.append_rows(more);
  EXPECT_EQ(server.handle({kEpoch + 2, spec}).body,
            cold_engine_body(merged, spec));
}

// Readers stay live while deltas land: handle() never takes the admin
// locks, and append_delta does its O(delta) incremental scan on a
// privately-extracted lineage (lineage_mutex_ held only for the brief
// extract/publish). This test — run under TSan in CI — hammers reads on
// every epoch of a growing chain while the chain is being built, plus a
// concurrent retire of an old ancestor, and then pins every epoch's bytes
// against a cold engine run of its cut.
TEST(ServeDeltaTest, ConcurrentReadsAndRetireDuringDeltaChain) {
  constexpr std::size_t kBaseRows = 9000, kBlockRows = 500;
  constexpr std::uint64_t kDeltas = 4;
  const data::Table full = make_table(kBaseRows + kDeltas * kBlockRows);
  const auto specs = all_kind_specs();

  Server server;
  server.register_snapshot(kEpoch, full.slice(0, kBaseRows));
  for (const auto& spec : specs)
    ASSERT_EQ(server.handle({kEpoch, spec}).type, MsgType::kResult);

  std::atomic<std::uint64_t> head{kEpoch};
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> reads{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&, r] {
      std::size_t i = static_cast<std::size_t>(r);
      while (!stop.load(std::memory_order_relaxed)) {
        // Read a random-ish epoch in [kEpoch, head]: retired ancestors
        // answer kError, live ones must answer kResult.
        const std::uint64_t h = head.load(std::memory_order_relaxed);
        const std::uint64_t e = kEpoch + i++ % (h - kEpoch + 1);
        const Response resp = server.handle({e, specs[i % specs.size()]});
        EXPECT_TRUE(resp.type == MsgType::kResult ||
                    resp.type == MsgType::kError);
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (std::uint64_t k = 1; k <= kDeltas; ++k) {
    const std::size_t hi = kBaseRows + k * kBlockRows;
    ASSERT_EQ(server.append_delta(kEpoch + k - 1, kEpoch + k,
                                  full.slice(hi - kBlockRows, hi)),
              specs.size());
    head.store(kEpoch + k, std::memory_order_relaxed);
    if (k == 2) server.retire_snapshot(kEpoch);  // ancestor, mid-chain
  }
  // Let the readers actually overlap the chain before stopping.
  ASSERT_TRUE(wait_until([&] { return reads.load() > 200; }));
  stop.store(true);
  for (auto& t : readers) t.join();

  // Every surviving epoch serves exactly its cut, bit for bit.
  for (std::uint64_t k = 1; k <= kDeltas; ++k) {
    const data::Table merged = full.slice(0, kBaseRows + k * kBlockRows);
    for (const auto& spec : specs) {
      SCOPED_TRACE("epoch +" + std::to_string(k));
      EXPECT_EQ(server.handle({kEpoch + k, spec}).body,
                cold_engine_body(merged, spec));
    }
  }
  EXPECT_EQ(server.handle({kEpoch, specs[0]}).type, MsgType::kError);
}

TEST(ResultCacheTest, PerShardLruEvictsTheColdTail) {
  ResultCache cache(16);  // 16 shards -> one entry per shard
  EXPECT_EQ(cache.capacity(), 16u);
  const auto body_for = [](std::uint64_t key) {
    return std::make_shared<const std::vector<std::uint8_t>>(
        std::vector<std::uint8_t>{static_cast<std::uint8_t>(key)});
  };
  // Keys 0..63 land on shard (key & 15): each shard sees 4 keys and keeps
  // only the last (its LRU budget is 1), so exactly 48..63 survive.
  for (std::uint64_t key = 0; key < 64; ++key) {
    cache.insert(key, kEpoch, body_for(key));
  }
  EXPECT_EQ(cache.size(), 16u);
  for (std::uint64_t key = 0; key < 48; ++key) {
    EXPECT_EQ(cache.find(key), nullptr) << key;
  }
  for (std::uint64_t key = 48; key < 64; ++key) {
    const auto hit = cache.find(key);
    ASSERT_NE(hit, nullptr) << key;
    EXPECT_EQ(hit->front(), static_cast<std::uint8_t>(key));
  }
  cache.invalidate_epoch(kEpoch);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ResultCacheTest, FindRefreshesRecency) {
  ResultCache cache(16);  // one entry per shard
  const auto body = std::make_shared<const std::vector<std::uint8_t>>(
      std::vector<std::uint8_t>{1});
  // Same shard (keys differ in high bits): a refreshing insert of the
  // resident key must not evict it.
  cache.insert(0, kEpoch, body);
  cache.insert(0, kEpoch, body);
  EXPECT_NE(cache.find(0), nullptr);
  // A second key on the shard evicts the older resident.
  cache.insert(16, kEpoch, body);
  EXPECT_EQ(cache.find(0), nullptr);
  EXPECT_NE(cache.find(16), nullptr);
}

// --- protocol and framing ----------------------------------------------------

TEST(ServeProtocolTest, RequestAndResponseRoundTrip) {
  Request req;
  req.epoch = 42;
  req.spec = spec_of(QueryKind::kCrosstab, "field", "career", "w");
  const auto payload = encode_request(req);
  const Request back = decode_request(payload);
  EXPECT_EQ(back.epoch, req.epoch);
  EXPECT_EQ(back.spec, canonicalize(req.spec));

  Response resp;
  resp.type = MsgType::kResult;
  resp.fingerprint = fingerprint(req.epoch, req.spec);
  resp.body = {1, 2, 3, 4, 5};
  EXPECT_EQ(decode_response(encode_response(resp)), resp);

  const ShedInfo info{7, 3, 12.5};
  const ShedInfo shed = decode_shed_body(encode_shed_body(info));
  EXPECT_EQ(shed.queue_depth, info.queue_depth);
  EXPECT_EQ(shed.admit_limit, info.admit_limit);
  EXPECT_DOUBLE_EQ(shed.window_p99_ms, info.window_p99_ms);

  EXPECT_EQ(decode_error_body(encode_error_body("boom")), "boom");
}

TEST(ServeProtocolTest, MalformedPayloadsAreRejected) {
  Request req;
  req.epoch = 1;
  req.spec = spec_of(QueryKind::kNumericSummary, "score");
  auto payload = encode_request(req);

  auto truncated = payload;
  truncated.resize(truncated.size() - 3);
  EXPECT_THROW(decode_request(truncated), Error);

  auto wrong_version = payload;
  wrong_version[1] = 0xFF;  // version is the u16 after the type byte
  EXPECT_THROW(decode_request(wrong_version), Error);

  auto bad_kind = payload;
  bad_kind[11] = 0x7F;  // kind byte follows type, version, and epoch
  EXPECT_THROW(decode_request(bad_kind), Error);

  auto trailing = payload;
  trailing.push_back(0);
  EXPECT_THROW(decode_request(trailing), Error);

  EXPECT_THROW(decode_response(std::vector<std::uint8_t>{}), Error);
}

TEST(ServeProtocolTest, FrameDecoderReassemblesArbitrarySplits) {
  std::vector<std::uint8_t> stream;
  const std::vector<std::uint8_t> p1 = {10, 20, 30};
  const std::vector<std::uint8_t> p2 = {};
  const std::vector<std::uint8_t> p3(1000, 0xAB);
  append_frame(stream, p1);
  append_frame(stream, p2);
  append_frame(stream, p3);

  // Worst-case delivery: one byte at a time.
  FrameDecoder decoder;
  std::vector<std::vector<std::uint8_t>> got;
  for (const std::uint8_t byte : stream) {
    decoder.feed(std::span<const std::uint8_t>(&byte, 1));
    while (decoder.has_frame()) got.push_back(decoder.take());
  }
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], p1);
  EXPECT_EQ(got[1], p2);
  EXPECT_EQ(got[2], p3);

  // All at once.
  FrameDecoder whole;
  whole.feed(stream);
  EXPECT_TRUE(whole.has_frame());
  EXPECT_EQ(whole.take(), p1);

  // A hostile length prefix is rejected before any allocation.
  FrameDecoder hostile;
  std::vector<std::uint8_t> oversized(4);
  const std::uint32_t huge = kMaxFrameBytes + 1;
  std::memcpy(oversized.data(), &huge, 4);
  EXPECT_THROW(hostile.feed(oversized), Error);
}

// --- transports --------------------------------------------------------------

TEST(ServeTransportTest, LocalTransportMatchesDirectHandle) {
  Server server;
  server.register_snapshot(kEpoch, shared_table());
  LocalTransport transport(server);

  for (const auto& spec : all_kind_specs()) {
    const Response direct = server.handle({kEpoch, spec});
    const Response framed = transport.query(kEpoch, spec);
    EXPECT_EQ(framed, direct);
  }
  // A malformed request comes back as a kError response, not a dead peer.
  const Response err = transport.query(kEpoch + 99, all_kind_specs()[0]);
  EXPECT_EQ(err.type, MsgType::kError);
}

int tcp_connect(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool send_all(int fd, const std::uint8_t* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, 0);
    if (n <= 0) return false;
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

// Blocking read of one response frame off the client socket.
bool recv_response(int fd, Response& out) {
  FrameDecoder decoder;
  std::uint8_t buf[512];
  while (!decoder.has_frame()) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) return false;
    decoder.feed(std::span<const std::uint8_t>(buf, static_cast<size_t>(n)));
  }
  out = decode_response(decoder.take());
  return true;
}

TEST(ServeTransportTest, TcpRoundTripMatchesLocalTransport) {
  Server server;
  server.register_snapshot(kEpoch, shared_table());
  TcpServer tcp(server, 0, 2);
  try {
    tcp.start();
  } catch (const Error& e) {
    GTEST_SKIP() << "no loopback sockets in this environment: " << e.what();
  }
  ASSERT_TRUE(tcp.running());
  ASSERT_NE(tcp.port(), 0);

  LocalTransport local(server);
  const int fd = tcp_connect(tcp.port());
  if (fd < 0) {
    tcp.stop();
    GTEST_SKIP() << "cannot connect to 127.0.0.1:" << tcp.port();
  }

  // Several requests on one connection, the first delivered in two
  // deliberately split writes to exercise server-side reassembly.
  const auto specs = all_kind_specs();
  for (std::size_t i = 0; i < specs.size(); ++i) {
    std::vector<std::uint8_t> frame;
    append_frame(frame, encode_request({kEpoch, specs[i]}));
    if (i == 0) {
      const std::size_t split = frame.size() / 2;
      ASSERT_TRUE(send_all(fd, frame.data(), split));
      ASSERT_TRUE(send_all(fd, frame.data() + split, frame.size() - split));
    } else {
      ASSERT_TRUE(send_all(fd, frame.data(), frame.size()));
    }
    Response over_tcp;
    ASSERT_TRUE(recv_response(fd, over_tcp));
    EXPECT_EQ(over_tcp, local.query(kEpoch, specs[i]));
  }
  ::close(fd);
  tcp.stop();
  EXPECT_FALSE(tcp.running());
}

TEST(ServeTransportTest, TcpServesParallelClients) {
  ServerConfig cfg;
  Server server(cfg);
  server.register_snapshot(kEpoch, shared_table());
  TcpServer tcp(server, 0, 3);
  try {
    tcp.start();
  } catch (const Error& e) {
    GTEST_SKIP() << "no loopback sockets in this environment: " << e.what();
  }

  const auto specs = all_kind_specs();
  std::vector<Response> expected;
  {
    LocalTransport local(server);
    for (const auto& spec : specs) expected.push_back(local.query(kEpoch, spec));
  }

  constexpr std::size_t kClients = 4;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const int fd = tcp_connect(tcp.port());
      if (fd < 0) {
        failures.fetch_add(1);
        return;
      }
      for (std::size_t i = 0; i < specs.size(); ++i) {
        const std::size_t pick = (c + i) % specs.size();
        std::vector<std::uint8_t> frame;
        append_frame(frame, encode_request({kEpoch, specs[pick]}));
        Response resp;
        if (!send_all(fd, frame.data(), frame.size()) ||
            !recv_response(fd, resp) || !(resp == expected[pick])) {
          failures.fetch_add(1);
          break;
        }
      }
      ::close(fd);
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(failures.load(), 0);
  tcp.stop();
}

}  // namespace
}  // namespace rcr::serve
