// rcr::stream sketch tests: per-sketch correctness against exact
// references, plus the subsystem's core property — ingesting random shard
// splits and merging gives the same answer as single-stream ingestion
// (exactly for the exact accumulators, within the documented bound for the
// approximate ones).
#include <algorithm>
#include <cmath>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/crosstab.hpp"
#include "data/table.hpp"
#include "stats/descriptive.hpp"
#include "stream/crosstab_stream.hpp"
#include "stream/sketch.hpp"
#include "stream/table_sketch.hpp"
#include "util/rng.hpp"

namespace {

using namespace rcr::stream;

std::vector<double> random_values(std::size_t n, std::uint64_t seed) {
  rcr::Rng rng(seed);
  std::vector<double> v(n);
  for (double& x : v) x = rng.uniform(-50.0, 150.0);
  return v;
}

// Random cut points turning [0, n) into 1..max_shards contiguous shards.
std::vector<std::pair<std::size_t, std::size_t>> random_shards(
    std::size_t n, std::size_t max_shards, rcr::Rng& rng) {
  std::set<std::size_t> cuts = {0, n};
  const std::size_t k = 1 + rng.next_below(max_shards);
  for (std::size_t i = 0; i + 1 < k; ++i) cuts.insert(rng.next_below(n));
  std::vector<std::pair<std::size_t, std::size_t>> shards;
  for (auto it = cuts.begin(); std::next(it) != cuts.end(); ++it)
    shards.emplace_back(*it, *std::next(it));
  return shards;
}

TEST(StreamHash, Mix64AndBytesAreStableAndSeeded) {
  EXPECT_EQ(mix64(1), mix64(1));
  EXPECT_NE(mix64(1), mix64(2));
  EXPECT_EQ(hash_bytes("abc", 7), hash_bytes("abc", 7));
  EXPECT_NE(hash_bytes("abc", 7), hash_bytes("abc", 8));
  EXPECT_NE(hash_bytes("abc", 7), hash_bytes("abd", 7));
}

TEST(Moments, MatchesDescriptiveStats) {
  const auto values = random_values(10000, 11);
  Moments m;
  for (double v : values) m.add(v);
  EXPECT_EQ(m.count(), values.size());
  EXPECT_NEAR(m.mean(), rcr::stats::mean(values), 1e-9);
  EXPECT_NEAR(m.variance(), rcr::stats::variance(values), 1e-6);
  EXPECT_EQ(m.min(), *std::min_element(values.begin(), values.end()));
  EXPECT_EQ(m.max(), *std::max_element(values.begin(), values.end()));
}

TEST(Moments, WeightedEqualsRepetition) {
  Moments weighted, repeated;
  const auto values = random_values(200, 3);
  for (double v : values) {
    weighted.add(v, 3.0);
    for (int r = 0; r < 3; ++r) repeated.add(v);
  }
  EXPECT_NEAR(weighted.mean(), repeated.mean(), 1e-12);
  EXPECT_NEAR(weighted.variance(), repeated.variance(), 1e-9);
}

TEST(Moments, ShardMergeMatchesSingleStream) {
  const auto values = random_values(20000, 21);
  Moments single;
  for (double v : values) single.add(v);

  rcr::Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    Moments merged;
    for (const auto& [lo, hi] : random_shards(values.size(), 7, rng)) {
      Moments shard;
      for (std::size_t i = lo; i < hi; ++i) shard.add(values[i]);
      merged.merge(shard);
    }
    EXPECT_EQ(merged.count(), single.count());
    EXPECT_NEAR(merged.mean(), single.mean(), 1e-10);
    EXPECT_NEAR(merged.variance(), single.variance(), 1e-7);
    EXPECT_EQ(merged.min(), single.min());
    EXPECT_EQ(merged.max(), single.max());
  }
}

// Exact rank deviation of `est` for target quantile q over sorted values.
double rank_error(const std::vector<double>& sorted, double q, double est) {
  const double n = static_cast<double>(sorted.size());
  const double target = std::max(1.0, std::ceil(q * n));
  const auto lo = std::lower_bound(sorted.begin(), sorted.end(), est);
  const auto hi = std::upper_bound(sorted.begin(), sorted.end(), est);
  const double rank_lo = static_cast<double>(lo - sorted.begin()) + 1.0;
  const double rank_hi = static_cast<double>(hi - sorted.begin());
  if (target < rank_lo) return rank_lo - target;
  if (target > rank_hi) return target - rank_hi;
  return 0.0;
}

TEST(GKQuantile, SingleStreamWithinEps) {
  constexpr double kEps = 0.01;
  auto values = random_values(50000, 31);
  GKQuantile q(kEps);
  for (double v : values) q.add(v);
  std::sort(values.begin(), values.end());

  EXPECT_EQ(q.count(), values.size());
  EXPECT_EQ(q.quantile(0.0), values.front());
  EXPECT_EQ(q.quantile(1.0), values.back());
  const double n = static_cast<double>(values.size());
  for (double p : {0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
    EXPECT_LE(rank_error(values, p, q.quantile(p)), kEps * n)
        << "quantile " << p;
  }
  // Space stays O((1/eps) log(eps n)), far below n.
  EXPECT_LT(q.tuple_count(), 2000u);
}

TEST(GKQuantile, ShardMergeWithinTwiceEps) {
  constexpr double kEps = 0.01;
  auto values = random_values(30000, 41);
  auto sorted = values;
  std::sort(sorted.begin(), sorted.end());
  const double n = static_cast<double>(values.size());

  rcr::Rng rng(7);
  for (int trial = 0; trial < 5; ++trial) {
    GKQuantile merged(kEps);
    for (const auto& [lo, hi] : random_shards(values.size(), 8, rng)) {
      GKQuantile shard(kEps);
      for (std::size_t i = lo; i < hi; ++i) shard.add(values[i]);
      merged.merge(shard);
    }
    EXPECT_EQ(merged.count(), values.size());
    for (double p : {0.01, 0.1, 0.5, 0.9, 0.99}) {
      EXPECT_LE(rank_error(sorted, p, merged.quantile(p)), 2.0 * kEps * n)
          << "trial " << trial << " quantile " << p;
    }
  }
}

TEST(GKQuantile, ExtremesExactAfterMerge) {
  GKQuantile a(0.05), b(0.05);
  for (int i = 0; i < 1000; ++i) a.add(static_cast<double>(i));
  for (int i = 1000; i < 2000; ++i) b.add(static_cast<double>(i));
  a.merge(b);
  EXPECT_EQ(a.quantile(0.0), 0.0);
  EXPECT_EQ(a.quantile(1.0), 1999.0);
}

TEST(CountMin, NeverUnderestimatesAndBoundsOverestimate) {
  CountMinSketch cms(4, 512, 17);
  // Zipf-ish exact counts over 200 keys.
  std::vector<double> exact(200);
  for (std::size_t k = 0; k < exact.size(); ++k) {
    exact[k] = std::floor(2000.0 / static_cast<double>(k + 1));
    for (double c = 0; c < exact[k]; ++c)
      cms.add("key_" + std::to_string(k));
  }
  for (std::size_t k = 0; k < exact.size(); ++k) {
    const double est = cms.estimate("key_" + std::to_string(k));
    EXPECT_GE(est, exact[k]);
    EXPECT_LE(est - exact[k], cms.error_bound());
  }
}

TEST(CountMin, ShardMergeEqualsSingleStream) {
  const std::size_t n = 5000;
  rcr::Rng keys(5);
  std::vector<std::uint64_t> stream(n);
  for (auto& k : stream) k = keys.next_below(64);

  CountMinSketch single(4, 256, 9);
  for (auto k : stream) single.add(mix64(k));

  rcr::Rng rng(55);
  CountMinSketch merged(4, 256, 9);
  for (const auto& [lo, hi] : random_shards(n, 6, rng)) {
    CountMinSketch shard(4, 256, 9);
    for (std::size_t i = lo; i < hi; ++i) shard.add(mix64(stream[i]));
    merged.merge(shard);
  }
  for (std::uint64_t k = 0; k < 64; ++k)
    EXPECT_EQ(merged.estimate(mix64(k)), single.estimate(mix64(k)));
  EXPECT_EQ(merged.total_weight(), single.total_weight());
}

TEST(SpaceSaving, ExactWithinCapacityAndDeterministic) {
  SpaceSaving ss(32);
  std::vector<double> exact(20);
  for (std::size_t k = 0; k < exact.size(); ++k) {
    exact[k] = static_cast<double>(5 * (exact.size() - k));
    for (double c = 0; c < exact[k]; ++c)
      ss.add("item_" + std::to_string(k));
  }
  EXPECT_TRUE(ss.exact());
  const auto top = ss.top(5);
  ASSERT_EQ(top.size(), 5u);
  EXPECT_EQ(top[0].key, "item_0");
  EXPECT_EQ(top[0].count, exact[0]);
  EXPECT_EQ(top[0].error, 0.0);
  EXPECT_GE(top[0].count, top[1].count);
}

TEST(SpaceSaving, OverCapacityKeepsHeavyHittersWithBoundedError) {
  SpaceSaving ss(16);
  // 8 heavy keys (1000 each) buried in 200 light keys (3 each).
  for (int rep = 0; rep < 1000; ++rep)
    for (int h = 0; h < 8; ++h) ss.add("heavy_" + std::to_string(h));
  for (int l = 0; l < 200; ++l)
    for (int rep = 0; rep < 3; ++rep) ss.add("light_" + std::to_string(l));
  EXPECT_FALSE(ss.exact());
  const auto top = ss.top(8);
  for (const auto& e : top) {
    EXPECT_EQ(e.key.substr(0, 6), "heavy_");
    EXPECT_GE(e.count, 1000.0);          // never underestimates
    EXPECT_LE(e.count - e.error, 1000.0);  // lower bound stays honest
  }
}

TEST(SpaceSaving, ShardMergeExactWhenDomainsFit) {
  const std::size_t n = 4000;
  rcr::Rng keys(13);
  std::vector<std::string> stream(n);
  for (auto& s : stream) s = "k" + std::to_string(keys.next_below(24));

  SpaceSaving single(32);
  for (const auto& s : stream) single.add(s);

  rcr::Rng rng(77);
  SpaceSaving merged(32);
  for (const auto& [lo, hi] : random_shards(n, 5, rng)) {
    SpaceSaving shard(32);
    for (std::size_t i = lo; i < hi; ++i) shard.add(stream[i]);
    merged.merge(shard);
  }
  EXPECT_TRUE(merged.exact());
  const auto a = single.top(24), b = merged.top(24);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key, b[i].key);
    EXPECT_EQ(a[i].count, b[i].count);
  }
}

TEST(HyperLogLog, EstimatesDistinctWithinBound) {
  for (std::size_t truth : {100u, 5000u, 100000u}) {
    HyperLogLog hll(12, 3);
    for (std::size_t i = 0; i < truth; ++i) {
      hll.add(mix64(i + 1));
      hll.add(mix64(i + 1));  // duplicates must not inflate
    }
    const double err =
        std::abs(hll.estimate() - static_cast<double>(truth)) /
        static_cast<double>(truth);
    EXPECT_LT(err, 5.0 * 1.04 / 64.0) << "truth " << truth;  // 5 sigma, p=12
  }
}

TEST(HyperLogLog, ShardMergeEqualsSingleStream) {
  const std::size_t n = 20000;
  HyperLogLog single(12, 3);
  for (std::size_t i = 0; i < n; ++i) single.add(mix64(i % 3000));

  rcr::Rng rng(123);
  HyperLogLog merged(12, 3);
  for (const auto& [lo, hi] : random_shards(n, 9, rng)) {
    HyperLogLog shard(12, 3);
    for (std::size_t i = lo; i < hi; ++i) shard.add(mix64(i % 3000));
    merged.merge(shard);
  }
  EXPECT_EQ(merged.estimate(), single.estimate());
}

TEST(WeightedReservoir, ShardMergeIdenticalToSingleStream) {
  const std::size_t n = 10000;
  const auto values = random_values(n, 61);
  WeightedReservoir single(50, 9);
  for (std::size_t i = 0; i < n; ++i) single.offer(i, values[i]);

  rcr::Rng rng(31);
  for (int trial = 0; trial < 5; ++trial) {
    WeightedReservoir merged(50, 9);
    for (const auto& [lo, hi] : random_shards(n, 8, rng)) {
      WeightedReservoir shard(50, 9);
      for (std::size_t i = lo; i < hi; ++i) shard.offer(i, values[i]);
      merged.merge(shard);
    }
    ASSERT_EQ(merged.items().size(), single.items().size());
    for (std::size_t i = 0; i < merged.items().size(); ++i) {
      EXPECT_EQ(merged.items()[i].index, single.items()[i].index);
      EXPECT_EQ(merged.items()[i].value, single.items()[i].value);
      EXPECT_EQ(merged.items()[i].priority, single.items()[i].priority);
    }
  }
}

TEST(WeightedReservoir, WeightsBiasSelection) {
  // One item with overwhelming weight must always be kept.
  WeightedReservoir res(5, 4);
  for (std::size_t i = 0; i < 1000; ++i)
    res.offer(i, static_cast<double>(i), i == 500 ? 1e9 : 1.0);
  bool found = false;
  for (const auto& item : res.items()) found = found || item.index == 500;
  EXPECT_TRUE(found);
  // Zero/negative weights are excluded.
  WeightedReservoir res2(5, 4);
  res2.offer(0, 1.0, 0.0);
  res2.offer(1, 2.0, -1.0);
  EXPECT_TRUE(res2.items().empty());
  EXPECT_EQ(res2.offered(), 2u);
}

// --- StreamingCrosstab vs the materialized builders -------------------------

rcr::data::Table crosstab_fixture(std::size_t rows, std::uint64_t seed,
                                  bool with_weights) {
  rcr::data::Table t;
  auto& color = t.add_categorical("color", {"red", "green", "blue"});
  auto& shape = t.add_categorical("shape", {"circle", "square"});
  auto& tags = t.add_multiselect("tags", {"a", "b", "c"});
  auto& w = t.add_numeric("w");
  color.freeze();
  shape.freeze();
  rcr::Rng rng(seed);
  for (std::size_t i = 0; i < rows; ++i) {
    if (rng.next_below(10) == 0) {
      color.push_missing();
    } else {
      color.push(std::vector<std::string>{"red", "green",
                                          "blue"}[rng.next_below(3)]);
    }
    if (rng.next_below(12) == 0) {
      shape.push_missing();
    } else {
      shape.push(rng.next_below(2) == 0 ? "circle" : "square");
    }
    if (rng.next_below(15) == 0) {
      tags.push_missing();
    } else {
      tags.push_mask(rng.next_below(8));
    }
    if (with_weights && rng.next_below(20) == 0) {
      w.push_missing();
    } else {
      w.push(with_weights ? rng.uniform(0.0, 3.0) : 1.0);
    }
  }
  return t;
}

TEST(StreamingCrosstab, MatchesMaterializedCategorical) {
  const auto full = crosstab_fixture(5000, 17, false);
  StreamingCrosstab streamed(full, "color", "shape");

  rcr::Rng rng(3);
  for (const auto& [lo, hi] : random_shards(full.row_count(), 6, rng)) {
    streamed.ingest(
        full.filter([&](std::size_t i) { return i >= lo && i < hi; }));
  }
  const auto exact = rcr::data::crosstab(full, "color", "shape");
  const auto got = streamed.to_labeled();
  ASSERT_EQ(got.row_labels, exact.row_labels);
  ASSERT_EQ(got.col_labels, exact.col_labels);
  for (std::size_t r = 0; r < got.row_labels.size(); ++r)
    for (std::size_t c = 0; c < got.col_labels.size(); ++c)
      EXPECT_EQ(got.counts.at(r, c), exact.counts.at(r, c));
}

TEST(StreamingCrosstab, MatchesMaterializedMultiselectWeighted) {
  const auto full = crosstab_fixture(4000, 29, true);
  StreamingCrosstab streamed(full, "color", "tags", std::string("w"));
  rcr::Rng rng(5);
  for (const auto& [lo, hi] : random_shards(full.row_count(), 5, rng)) {
    streamed.ingest(
        full.filter([&](std::size_t i) { return i >= lo && i < hi; }));
  }
  const auto exact = rcr::data::crosstab_multiselect(full, "color", "tags",
                                                     std::string("w"));
  const auto got = streamed.to_labeled();
  for (std::size_t r = 0; r < got.row_labels.size(); ++r)
    for (std::size_t c = 0; c < got.col_labels.size(); ++c)
      EXPECT_NEAR(got.counts.at(r, c), exact.counts.at(r, c), 1e-9);
}

TEST(StreamingCrosstab, MergeAddsCells) {
  const auto full = crosstab_fixture(1000, 41, false);
  StreamingCrosstab a(full, "color", "shape");
  StreamingCrosstab b(full, "color", "shape");
  const std::size_t half = full.row_count() / 2;
  a.ingest(full.filter([&](std::size_t i) { return i < half; }));
  b.ingest(full.filter([&](std::size_t i) { return i >= half; }));
  a.merge(b);
  const auto exact = rcr::data::crosstab(full, "color", "shape");
  const auto got = a.to_labeled();
  for (std::size_t r = 0; r < got.row_labels.size(); ++r)
    for (std::size_t c = 0; c < got.col_labels.size(); ++c)
      EXPECT_EQ(got.counts.at(r, c), exact.counts.at(r, c));
}

// --- TableSketch property: random shard splits merge to the single-stream
// state across every sketch at once.
TEST(TableSketch, RandomShardSplitsMergeToSingleStreamState) {
  auto full = crosstab_fixture(6000, 53, false);
  // Rename w to a real numeric variable for moments/quantiles/reservoir.
  rcr::Rng vals(8);
  auto& w = full.numeric("w");
  for (std::size_t i = 0; i < w.size(); ++i)
    w.set(i, vals.uniform(0.0, 100.0));

  TableSketchOptions opts;
  opts.crosstabs = {{"color", "shape"}, {"color", "tags"}};
  opts.reservoir_column = "w";

  TableSketch single(full, opts);
  single.ingest(full, 0);

  rcr::Rng rng(71);
  for (int trial = 0; trial < 3; ++trial) {
    TableSketch merged(full, opts);
    bool first = true;
    for (const auto& [lo, hi] : random_shards(full.row_count(), 7, rng)) {
      TableSketch shard(full, opts);
      shard.ingest(
          full.filter([&](std::size_t i) { return i >= lo && i < hi; }), lo);
      if (first) {
        merged = std::move(shard);
        first = false;
      } else {
        merged.merge(shard);
      }
    }
    EXPECT_EQ(merged.rows(), single.rows());
    // Exact accumulators: identical.
    EXPECT_EQ(merged.category_counts("color"), single.category_counts("color"));
    EXPECT_EQ(merged.option_counts("tags"), single.option_counts("tags"));
    EXPECT_EQ(merged.answered("tags"), single.answered("tags"));
    EXPECT_EQ(merged.distinct().estimate(), single.distinct().estimate());
    for (const char* label : {"red", "green", "blue"}) {
      const auto key = TableSketch::label_key("color", label);
      EXPECT_EQ(merged.label_cms().estimate(key),
                single.label_cms().estimate(key));
    }
    ASSERT_EQ(merged.reservoir().items().size(),
              single.reservoir().items().size());
    for (std::size_t i = 0; i < merged.reservoir().items().size(); ++i)
      EXPECT_EQ(merged.reservoir().items()[i].index,
                single.reservoir().items()[i].index);
    const auto sx = single.crosstab("color", "tags").to_labeled();
    const auto mx = merged.crosstab("color", "tags").to_labeled();
    for (std::size_t r = 0; r < sx.row_labels.size(); ++r)
      for (std::size_t c = 0; c < sx.col_labels.size(); ++c)
        EXPECT_EQ(mx.counts.at(r, c), sx.counts.at(r, c));
    // Near-exact accumulators: within documented bounds.
    EXPECT_NEAR(merged.moments("w").mean(), single.moments("w").mean(), 1e-9);
    const double n = static_cast<double>(single.rows());
    for (double p : {0.1, 0.5, 0.9}) {
      EXPECT_NEAR(merged.quantile_sketch("w").quantile(p),
                  single.quantile_sketch("w").quantile(p),
                  // both are within 2 eps n of the true rank; values at
                  // ranks that close differ by little on a smooth uniform
                  4.0 * opts.quantile_eps * 100.0 + 1e-9)
          << "p=" << p << " n=" << n;
    }
    EXPECT_TRUE(merged.heavy_hitters().exact());
  }
}

TEST(TableSketch, ApproxBytesAndMetricsPublish) {
  const auto full = crosstab_fixture(500, 5, false);
  TableSketchOptions opts;
  opts.reservoir_column = "w";
  TableSketch sketch(full, opts);
  sketch.ingest(full, 0);
  EXPECT_GT(sketch.approx_bytes(), 0u);
  EXPECT_LT(sketch.approx_bytes(), 4u << 20);
  sketch.publish_metrics();  // must not throw, obs on or off
}

}  // namespace
