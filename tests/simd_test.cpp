// The rcr::simd contract, pinned per kernel: every vector width produces
// bits identical to a plain scalar loop, including the masked tails that a
// non-multiple-of-L trip count leaves behind. Each test runs the public
// entry point under force_isa() for every ISA the build and CPU provide
// and compares against an independently written reference.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "simd/dispatch.hpp"
#include "simd/kernels.hpp"
#include "stream/sketch.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rcr::simd {
namespace {

std::vector<Isa> available_isas() {
  std::vector<Isa> isas;
  for (const Isa isa : {Isa::kScalar, Isa::kSse2, Isa::kAvx2, Isa::kAvx512})
    if (isa_available(isa)) isas.push_back(isa);
  return isas;
}

struct ForcedIsa {
  explicit ForcedIsa(Isa isa) { force_isa(isa); }
  ~ForcedIsa() { clear_isa_override(); }
};

// Row counts that land on and around every lane width's block boundary,
// so both the full-block body and the masked tail get exercised.
constexpr std::size_t kRowCounts[] = {0, 1, 2, 3, 5, 7, 8, 9, 15, 16, 17, 100};
// Option counts across the mask word, including the full 64-bit width.
constexpr std::size_t kOptionCounts[] = {1, 5, 8, 12, 13, 64};

struct MultiSelectRows {
  std::vector<std::int32_t> codes;
  std::vector<std::uint64_t> masks;
  std::vector<std::uint8_t> missing;
  std::vector<double> weights;
};

MultiSelectRows make_rows(std::size_t n, std::size_t n_opts,
                          std::uint64_t seed) {
  MultiSelectRows r;
  Rng rng(seed);
  const std::uint64_t opt_mask =
      n_opts >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << n_opts) - 1;
  for (std::size_t i = 0; i < n; ++i) {
    const bool row_missing = rng.next_double() < 0.1;
    r.codes.push_back(rng.next_double() < 0.07
                          ? -1
                          : static_cast<std::int32_t>(rng.next_below(4)));
    r.masks.push_back(row_missing ? 0 : (rng.next_u64() & opt_mask));
    r.missing.push_back(row_missing ? 1 : 0);
    r.weights.push_back(rng.next_double() < 0.05
                            ? std::numeric_limits<double>::quiet_NaN()
                            : rng.next_double() * 2.0 + 0.25);
  }
  return r;
}

TEST(SimdKernelsTest, TallyMultiselectMatchesScalarReference) {
  for (const std::size_t n : kRowCounts) {
    for (const std::size_t n_opts : kOptionCounts) {
      const MultiSelectRows r = make_rows(n, n_opts, 11 * n + n_opts);
      const std::size_t cells = 4 * n_opts;

      std::vector<std::uint64_t> want(cells, 0);
      for (std::size_t i = 0; i < n; ++i) {
        if (r.codes[i] < 0) continue;
        for (std::size_t o = 0; o < n_opts; ++o)
          want[static_cast<std::size_t>(r.codes[i]) * n_opts + o] +=
              (r.masks[i] >> o) & 1u;
      }

      for (const Isa isa : available_isas()) {
        ForcedIsa forced(isa);
        std::vector<std::uint64_t> got(cells, 0);
        tally_multiselect(r.codes.data(), r.masks.data(), 0, n, n_opts,
                          got.data());
        EXPECT_EQ(got, want) << isa_name(isa) << " n=" << n
                             << " n_opts=" << n_opts;
      }
    }
  }
}

TEST(SimdKernelsTest, TallyOptionsMatchesScalarReference) {
  for (const std::size_t n : kRowCounts) {
    for (const std::size_t n_opts : kOptionCounts) {
      const MultiSelectRows r = make_rows(n, n_opts, 31 * n + n_opts);

      std::vector<std::uint64_t> want(n_opts, 0);
      std::size_t want_missing = 0;
      for (std::size_t i = 0; i < n; ++i) {
        if (r.missing[i] != 0) ++want_missing;
        for (std::size_t o = 0; o < n_opts; ++o)
          want[o] += (r.masks[i] >> o) & 1u;
      }

      for (const Isa isa : available_isas()) {
        ForcedIsa forced(isa);
        std::vector<std::uint64_t> got(n_opts, 0);
        const std::size_t got_missing = tally_options(
            r.masks.data(), r.missing.data(), 0, n, n_opts, got.data());
        EXPECT_EQ(got, want) << isa_name(isa) << " n=" << n
                             << " n_opts=" << n_opts;
        EXPECT_EQ(got_missing, want_missing);
      }
    }
  }
}

TEST(SimdKernelsTest, AddWeightedMultiselectMatchesScalarBitwise) {
  for (const std::size_t n : kRowCounts) {
    for (const std::size_t n_opts : kOptionCounts) {
      const MultiSelectRows r = make_rows(n, n_opts, 17 * n + n_opts);
      const std::size_t cells = 4 * n_opts;

      // The scalar contract: skip unanswered / missing / NaN-weight rows,
      // then cells[code * n_opts + o] += w for every set bit, in row order.
      std::vector<double> want(cells, 0.0);
      for (std::size_t i = 0; i < n; ++i) {
        if (r.codes[i] < 0 || r.missing[i] != 0) continue;
        const double w = r.weights[i];
        if (std::isnan(w)) continue;
        for (std::size_t o = 0; o < n_opts; ++o)
          if ((r.masks[i] >> o) & 1u)
            want[static_cast<std::size_t>(r.codes[i]) * n_opts + o] += w;
      }

      for (const Isa isa : available_isas()) {
        ForcedIsa forced(isa);
        std::vector<double> got(cells, 0.0);
        add_weighted_multiselect(r.codes.data(), r.masks.data(),
                                 r.missing.data(), r.weights.data(), 0, n,
                                 n_opts, got.data());
        for (std::size_t c = 0; c < cells; ++c)
          ASSERT_EQ(got[c], want[c]) << isa_name(isa) << " n=" << n
                                     << " n_opts=" << n_opts << " cell " << c;
      }
    }
  }
}

TEST(SimdKernelsTest, AddWeightedMultiselectRejectsNegativeWeights) {
  const std::int32_t code = 0;
  const std::uint64_t mask = 1;
  const std::uint8_t missing = 0;
  const double w = -0.5;
  double cell = 0.0;
  for (const Isa isa : available_isas()) {
    ForcedIsa forced(isa);
    EXPECT_THROW(
        add_weighted_multiselect(&code, &mask, &missing, &w, 0, 1, 1, &cell),
        rcr::Error)
        << isa_name(isa);
  }
}

TEST(SimdKernelsTest, Mix64MapMatchesScalarMix) {
  Rng rng(404);
  for (const std::size_t n : kRowCounts) {
    std::vector<std::uint64_t> in(n);
    for (auto& v : in) v = rng.next_u64();
    const std::uint64_t salt = rng.next_u64();

    std::vector<std::uint64_t> want(n);
    for (std::size_t i = 0; i < n; ++i) want[i] = stream::mix64(in[i] ^ salt);

    for (const Isa isa : available_isas()) {
      ForcedIsa forced(isa);
      std::vector<std::uint64_t> got(n, 0);
      mix64_map(in.data(), n, salt, got.data());
      EXPECT_EQ(got, want) << isa_name(isa) << " n=" << n;
    }
  }
}

TEST(SimdKernelsTest, Mix64CombineMatchesScalarChain) {
  Rng rng(405);
  for (const std::size_t n : kRowCounts) {
    std::vector<std::uint64_t> h0(n), cells(n);
    for (auto& v : h0) v = rng.next_u64();
    for (auto& v : cells) v = rng.next_u64();

    std::vector<std::uint64_t> want = h0;
    for (std::size_t i = 0; i < n; ++i)
      want[i] = stream::mix64(want[i] ^ cells[i]);

    for (const Isa isa : available_isas()) {
      ForcedIsa forced(isa);
      std::vector<std::uint64_t> got = h0;
      mix64_combine(got.data(), cells.data(), n);
      EXPECT_EQ(got, want) << isa_name(isa) << " n=" << n;
    }
  }
}

TEST(SimdKernelsTest, UnitDoublesMatchScalarConvention) {
  Rng rng(406);
  for (const std::size_t n : kRowCounts) {
    std::vector<std::uint64_t> in(n);
    for (auto& v : in) v = rng.next_u64();

    std::vector<double> want(n);
    for (std::size_t i = 0; i < n; ++i)
      want[i] = static_cast<double>(in[i] >> 11) * 0x1.0p-53;

    for (const Isa isa : available_isas()) {
      ForcedIsa forced(isa);
      std::vector<double> got(n, -1.0);
      unit_doubles_from_u64(in.data(), n, got.data());
      for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(got[i], want[i]) << isa_name(isa) << " n=" << n << " i=" << i;
    }
  }
}

// Sub-range [lo, hi) addressing — the engine hands kernels shard slices,
// not whole columns.
TEST(SimdKernelsTest, KernelsHonorSubrangeBounds) {
  const std::size_t n = 50;
  const std::size_t n_opts = 13;
  const MultiSelectRows r = make_rows(n, n_opts, 777);
  const std::size_t lo = 9, hi = 37;  // both off any lane boundary
  const std::size_t cells = 4 * n_opts;

  std::vector<std::uint64_t> want(cells, 0);
  for (std::size_t i = lo; i < hi; ++i) {
    if (r.codes[i] < 0) continue;
    for (std::size_t o = 0; o < n_opts; ++o)
      want[static_cast<std::size_t>(r.codes[i]) * n_opts + o] +=
          (r.masks[i] >> o) & 1u;
  }
  for (const Isa isa : available_isas()) {
    ForcedIsa forced(isa);
    std::vector<std::uint64_t> got(cells, 0);
    tally_multiselect(r.codes.data(), r.masks.data(), lo, hi, n_opts,
                      got.data());
    EXPECT_EQ(got, want) << isa_name(isa);
  }
}

// --- Dispatch ---------------------------------------------------------------

TEST(SimdDispatchTest, NamesAndLaneCounts) {
  EXPECT_STREQ(isa_name(Isa::kScalar), "scalar");
  EXPECT_STREQ(isa_name(Isa::kSse2), "sse2");
  EXPECT_STREQ(isa_name(Isa::kAvx2), "avx2");
  EXPECT_STREQ(isa_name(Isa::kAvx512), "avx512");
  EXPECT_EQ(isa_lanes(Isa::kScalar), 1u);
  EXPECT_EQ(isa_lanes(Isa::kSse2), 2u);
  EXPECT_EQ(isa_lanes(Isa::kAvx2), 4u);
  EXPECT_EQ(isa_lanes(Isa::kAvx512), 8u);
}

TEST(SimdDispatchTest, ScalarIsAlwaysAvailable) {
  EXPECT_TRUE(isa_available(Isa::kScalar));
}

TEST(SimdDispatchTest, ForceOverridesAndClearRestores) {
  const Isa native = active_isa();
  EXPECT_TRUE(isa_available(native));
  for (const Isa isa : available_isas()) {
    force_isa(isa);
    EXPECT_EQ(active_isa(), isa);
  }
  clear_isa_override();
  EXPECT_EQ(active_isa(), native);
}

TEST(SimdDispatchTest, DescribeNamesTheActiveIsa) {
  force_isa(Isa::kScalar);
  EXPECT_EQ(describe(), "scalar lanes=1");
  clear_isa_override();
  const std::string d = describe();
  EXPECT_NE(d.find(isa_name(active_isa())), std::string::npos);
}

}  // namespace
}  // namespace rcr::simd
