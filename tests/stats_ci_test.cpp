#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/ci.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rcr::stats {
namespace {

TEST(WilsonTest, KnownValue) {
  // Hand-computed: 10/40 at 95% -> [0.1419, 0.4019] (Wilson).
  const auto ci = wilson_ci(10, 40);
  EXPECT_NEAR(ci.estimate, 0.25, 1e-12);
  EXPECT_NEAR(ci.lo, 0.1419, 5e-4);
  EXPECT_NEAR(ci.hi, 0.4019, 5e-4);
}

TEST(WilsonTest, ZeroAndAllSuccesses) {
  const auto zero = wilson_ci(0, 20);
  EXPECT_DOUBLE_EQ(zero.estimate, 0.0);
  EXPECT_NEAR(zero.lo, 0.0, 1e-12);
  EXPECT_GT(zero.hi, 0.0);  // never degenerate, unlike Wald
  const auto all = wilson_ci(20, 20);
  EXPECT_DOUBLE_EQ(all.hi, 1.0);
  EXPECT_LT(all.lo, 1.0);
}

TEST(WilsonTest, HigherConfidenceIsWider) {
  const auto c90 = wilson_ci(15, 50, 0.90);
  const auto c99 = wilson_ci(15, 50, 0.99);
  EXPECT_GT(c99.width(), c90.width());
}

TEST(WaldTest, DegenerateAtBoundary) {
  const auto ci = wald_ci(0, 20);
  EXPECT_DOUBLE_EQ(ci.lo, 0.0);
  EXPECT_DOUBLE_EQ(ci.hi, 0.0);  // the known Wald failure Wilson avoids
}

TEST(AgrestiCoullTest, ContainsWilsonEstimate) {
  const auto w = wilson_ci(12, 80);
  const auto ac = agresti_coull_ci(12, 80);
  EXPECT_NEAR(w.estimate, ac.estimate, 1e-12);
  // AC is at least as wide as Wilson.
  EXPECT_GE(ac.width(), w.width() - 1e-9);
}

TEST(ProportionCiTest, RejectsInvalidInput) {
  EXPECT_THROW(wilson_ci(5, 0), rcr::Error);
  EXPECT_THROW(wilson_ci(11, 10), rcr::Error);
  EXPECT_THROW(wilson_ci(-1, 10), rcr::Error);
  EXPECT_THROW(wilson_ci(5, 10, 1.0), rcr::Error);
  EXPECT_THROW(wilson_ci(5, 10, 0.0), rcr::Error);
}

TEST(MeanCiTest, ShrinksWithN) {
  rcr::Rng rng(5);
  std::vector<double> small, large;
  for (int i = 0; i < 20; ++i) small.push_back(rng.normal(10, 2));
  for (int i = 0; i < 2000; ++i) large.push_back(rng.normal(10, 2));
  const auto ci_small = mean_ci(small);
  const auto ci_large = mean_ci(large);
  EXPECT_LT(ci_large.width(), ci_small.width());
  EXPECT_TRUE(ci_large.contains(10.0));
}

TEST(MeanCiTest, RequiresTwoPoints) {
  EXPECT_THROW(mean_ci(std::vector<double>{1.0}), rcr::Error);
}

TEST(WeightedCiTest, EqualWeightsMatchWilson) {
  const auto w = weighted_proportion_ci(30.0, 100.0, 100.0);
  const auto plain = wilson_ci(30, 100);
  EXPECT_NEAR(w.lo, plain.lo, 1e-12);
  EXPECT_NEAR(w.hi, plain.hi, 1e-12);
}

TEST(WeightedCiTest, SmallerEffectiveNIsWider) {
  const auto full = weighted_proportion_ci(30.0, 100.0, 100.0);
  const auto shrunk = weighted_proportion_ci(30.0, 100.0, 50.0);
  EXPECT_GT(shrunk.width(), full.width());
}

// Coverage property: the Wilson interval at 95% should cover the true p in
// roughly 95% of simulated binomial samples (within Monte-Carlo noise).
class WilsonCoverageTest
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(WilsonCoverageTest, NominalCoverage) {
  const auto [p, n] = GetParam();
  rcr::Rng rng(12345);
  const int trials = 4000;
  int covered = 0;
  for (int t = 0; t < trials; ++t) {
    int successes = 0;
    for (int i = 0; i < n; ++i)
      if (rng.bernoulli(p)) ++successes;
    if (wilson_ci(successes, n).contains(p)) ++covered;
  }
  const double coverage = static_cast<double>(covered) / trials;
  // Wilson's actual coverage oscillates around nominal; allow a band.
  EXPECT_GT(coverage, 0.92) << "p=" << p << " n=" << n;
  EXPECT_LE(coverage, 0.995) << "p=" << p << " n=" << n;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, WilsonCoverageTest,
    ::testing::Combine(::testing::Values(0.05, 0.2, 0.5, 0.8),
                       ::testing::Values(25, 100, 400)));

}  // namespace
}  // namespace rcr::stats
