#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/timer.hpp"

namespace rcr::obs {
namespace {

// Minimal structural JSON check: quotes balanced outside strings, every
// brace/bracket closed in order, no trailing junk.
bool json_well_formed(const std::string& s) {
  std::vector<char> stack;
  bool in_string = false, escaped = false;
  for (char c : s) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        stack.push_back(c);
        break;
      case '}':
        if (stack.empty() || stack.back() != '{') return false;
        stack.pop_back();
        break;
      case ']':
        if (stack.empty() || stack.back() != '[') return false;
        stack.pop_back();
        break;
      default:
        break;
    }
  }
  return !in_string && stack.empty() && !s.empty() && s.front() == '{';
}

TEST(ObsSnapshotTest, EmptySnapshotIsValidJsonAndTable) {
  Snapshot empty;
  EXPECT_TRUE(json_well_formed(empty.to_json()));
  EXPECT_NE(empty.to_json().find("\"counters\""), std::string::npos);
  EXPECT_FALSE(empty.to_table().empty());
}

#ifndef RCR_OBS_DISABLED

TEST(ObsCounterTest, ShardedCountsSumExactlyAcrossThreads) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kIncrements; ++i) c.add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.total(), static_cast<std::uint64_t>(kThreads) * kIncrements);
  c.reset();
  EXPECT_EQ(c.total(), 0u);
}

TEST(ObsGaugeTest, TracksValueAndHighWater) {
  Gauge g;
  g.set(5);
  g.set(12);
  g.set(3);
  EXPECT_EQ(g.value(), 3);
  EXPECT_EQ(g.high_water(), 12);
  g.add(20);
  EXPECT_EQ(g.value(), 23);
  EXPECT_EQ(g.high_water(), 23);
  g.reset();
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(g.high_water(), 0);
}

TEST(ObsHistogramTest, CountSumMinMaxAreExact) {
  Histogram h;
  h.record(1.0);
  h.record(2.5);
  h.record(10.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 13.5);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 10.0);
}

TEST(ObsHistogramTest, PercentilesWithinOneBucketRatio) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i));
  // Buckets grow by 1.5x, so any quantile estimate is within that factor
  // of the true value (and clamped to the observed min/max).
  const double p50 = h.percentile(0.50);
  EXPECT_GE(p50, 500.0 / 1.5);
  EXPECT_LE(p50, 500.0 * 1.5);
  const double p99 = h.percentile(0.99);
  EXPECT_GE(p99, 990.0 / 1.5);
  EXPECT_LE(p99, 1000.0);
  EXPECT_LE(h.percentile(0.50), h.percentile(0.95));
  EXPECT_LE(h.percentile(0.95), h.percentile(0.99));
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 1000.0);
}

TEST(ObsHistogramTest, EmptyHistogramReportsZeros) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
}

TEST(ObsHistogramWindowTest, WindowSeesOnlyItsOwnInterval) {
  Histogram h;
  // Interval 1: slow requests.
  for (int i = 0; i < 100; ++i) h.record(100.0);
  auto w1 = h.window_snapshot("lat");
  EXPECT_EQ(w1.name, "lat");
  EXPECT_EQ(w1.count, 100u);
  EXPECT_DOUBLE_EQ(w1.sum, 100.0 * 100.0);
  EXPECT_GE(w1.p99, 100.0 / 1.5);
  EXPECT_LE(w1.p99, 100.0 * 1.5);

  // Interval 2: fast requests. A lifetime p99 would still sit near 100ms
  // (100 of 200 samples are slow); the window must report ~1ms.
  for (int i = 0; i < 100; ++i) h.record(1.0);
  const auto w2 = h.window_snapshot();
  EXPECT_EQ(w2.count, 100u);
  EXPECT_DOUBLE_EQ(w2.sum, 100.0);
  EXPECT_LE(w2.p99, 1.0 * 1.5);
  EXPECT_GE(h.percentile(0.99), 100.0 / 1.5);  // lifetime unaffected

  // Interval 3: nothing happened.
  const auto w3 = h.window_snapshot();
  EXPECT_EQ(w3.count, 0u);
  EXPECT_DOUBLE_EQ(w3.sum, 0.0);
  EXPECT_DOUBLE_EQ(w3.p99, 0.0);

  // Lifetime state never re-windows.
  EXPECT_EQ(h.count(), 200u);
  EXPECT_DOUBLE_EQ(h.sum(), 10100.0);
}

TEST(ObsHistogramWindowTest, WindowPercentilesWithinOneBucketRatio) {
  Histogram h;
  for (int i = 0; i < 500; ++i) h.record(3.0);  // pre-window noise
  h.window_snapshot();
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i));
  const auto w = h.window_snapshot();
  EXPECT_EQ(w.count, 1000u);
  EXPECT_GE(w.p50, 500.0 / 1.5);
  EXPECT_LE(w.p50, 500.0 * 1.5);
  EXPECT_GE(w.p99, 990.0 / 1.5);
  EXPECT_LE(w.p99, 1000.0 * 1.5);
  EXPECT_LE(w.p50, w.p95);
  EXPECT_LE(w.p95, w.p99);
  // Window min/max come from occupied bucket bounds: same 1.5x guarantee.
  EXPECT_LE(w.min, 1.0);
  EXPECT_GE(w.max, 1000.0 / 1.5);
}

TEST(ObsHistogramWindowTest, ResetRestartsTheWindowBase) {
  Histogram h;
  for (int i = 0; i < 10; ++i) h.record(5.0);
  h.window_snapshot();
  h.reset();
  for (int i = 0; i < 3; ++i) h.record(7.0);
  const auto w = h.window_snapshot();
  EXPECT_EQ(w.count, 3u);
  EXPECT_DOUBLE_EQ(w.sum, 21.0);
}

TEST(ObsMeterTest, RateIsCountOverBusyTime) {
  Meter m;
  m.add(100, 2.0);
  m.add(50, 0.5);
  EXPECT_EQ(m.count(), 150u);
  EXPECT_DOUBLE_EQ(m.busy_seconds(), 2.5);
  EXPECT_DOUBLE_EQ(m.rate_per_sec(), 60.0);
}

TEST(ObsRegistryTest, SameNameReturnsSameMetric) {
  auto& a = registry().counter("obs_test.same");
  auto& b = registry().counter("obs_test.same");
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&registry().counter("obs_test.same"),
            &registry().counter("obs_test.other"));
}

TEST(ObsRegistryTest, SnapshotExportsAllKindsAsJsonAndTable) {
  registry().counter("obs_test.snapshot.counter").add(7);
  registry().gauge("obs_test.snapshot.gauge").set(4);
  registry().histogram("obs_test.snapshot.hist").record(1.25);
  registry().meter("obs_test.snapshot.meter").add(10, 0.1);

  const Snapshot snap = snapshot();
  const std::string json = snap.to_json();
  EXPECT_TRUE(json_well_formed(json));
  for (const char* needle :
       {"\"obs_test.snapshot.counter\"", "\"obs_test.snapshot.gauge\"",
        "\"obs_test.snapshot.hist\"", "\"obs_test.snapshot.meter\"", "\"p50\"",
        "\"p95\"", "\"p99\"", "\"high_water\"", "\"rate_per_sec\""}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle;
  }

  const std::string table = snap.to_table();
  EXPECT_NE(table.find("obs_test.snapshot.counter"), std::string::npos);
  EXPECT_NE(table.find("counter"), std::string::npos);
  EXPECT_NE(table.find("histogram"), std::string::npos);
}

TEST(ObsRegistryTest, ResetZeroesButKeepsRegistrations) {
  auto& c = registry().counter("obs_test.reset.counter");
  c.add(41);
  registry().reset();
  EXPECT_EQ(c.total(), 0u);
  EXPECT_EQ(&registry().counter("obs_test.reset.counter"), &c);
}

TEST(ObsTimerTest, ScopedTimerRecordsOneSample) {
  auto& h = registry().histogram("obs_test.timer.hist");
  const auto before = h.count();
  { ScopedTimer t(h); }
  EXPECT_EQ(h.count(), before + 1);
}

TEST(ObsTimerTest, MeterScopeRecordsEventsAndTime) {
  auto& m = registry().meter("obs_test.timer.meter");
  const auto before = m.count();
  {
    MeterScope scope(m, 5);
    scope.set_events(25);
  }
  EXPECT_EQ(m.count(), before + 25);
  EXPECT_GE(m.busy_seconds(), 0.0);
}

#else  // RCR_OBS_DISABLED

TEST(ObsDisabledTest, ApiCompilesToNoops) {
  registry().counter("x").add(5);
  registry().gauge("x").set(3);
  registry().histogram("x").record(1.0);
  registry().meter("x").add(1, 1.0);
  EXPECT_EQ(registry().counter("x").total(), 0u);
  const Snapshot snap = snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(json_well_formed(snap.to_json()));
}

#endif  // RCR_OBS_DISABLED

}  // namespace
}  // namespace rcr::obs
