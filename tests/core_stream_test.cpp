// Streaming study mode: the sketch built from generated blocks must agree
// with the materialized wave's exact analyses, and must be bitwise
// thread-count-invariant (serial == 1 thread == 4 threads).
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/stream_study.hpp"
#include "data/crosstab.hpp"
#include "data/csv.hpp"
#include "parallel/thread_pool.hpp"
#include "stats/descriptive.hpp"
#include "synth/domain.hpp"
#include "synth/generator.hpp"

namespace {

using rcr::core::StreamStudyConfig;
namespace col = rcr::synth::col;

StreamStudyConfig small_config() {
  StreamStudyConfig config;
  config.respondents = 3000;
  config.seed = 19;
  config.block_rows = 256;
  return config;
}

TEST(StreamStudy, SketchMatchesMaterializedWave) {
  const auto config = small_config();
  const auto sketch = rcr::core::run_stream_study(config);
  const auto full = rcr::synth::generate_wave(
      {config.wave, config.respondents, config.seed, nullptr});

  EXPECT_EQ(sketch.rows(), full.row_count());

  // Exact categorical counts.
  EXPECT_EQ(sketch.category_counts(col::kField),
            full.categorical(col::kField).counts());
  EXPECT_EQ(sketch.option_counts(col::kLanguages),
            full.multiselect(col::kLanguages).option_counts());

  // Moments vs descriptive stats over present values.
  const auto years = full.numeric(col::kYearsProgramming).present_values();
  const auto& m = sketch.moments(col::kYearsProgramming);
  EXPECT_EQ(m.count(), years.size());
  EXPECT_NEAR(m.mean(), rcr::stats::mean(years), 1e-9);
  EXPECT_NEAR(m.stddev(), rcr::stats::stddev(years), 1e-7);

  // GK quantiles within the documented merged bound (2 * eps * n rank).
  auto sorted = years;
  std::sort(sorted.begin(), sorted.end());
  const double eps = config.sketch.quantile_eps;
  for (double p : {0.1, 0.5, 0.9}) {
    const double est = sketch.quantile_sketch(col::kYearsProgramming)
                           .quantile(p);
    const auto lo = std::lower_bound(sorted.begin(), sorted.end(), est);
    const auto hi = std::upper_bound(sorted.begin(), sorted.end(), est);
    const double n = static_cast<double>(sorted.size());
    const double target = std::ceil(p * n);
    const double rank_lo = static_cast<double>(lo - sorted.begin()) + 1.0;
    const double rank_hi = static_cast<double>(hi - sorted.begin());
    const double err = target < rank_lo ? rank_lo - target
                       : target > rank_hi ? target - rank_hi
                                          : 0.0;
    EXPECT_LE(err, 2.0 * eps * n) << "quantile " << p;
  }

  // Streaming crosstab equals the exact multiselect crosstab.
  const auto exact = rcr::data::crosstab_multiselect(full, col::kField,
                                                     col::kLanguages);
  const auto got = sketch.crosstab(col::kField, col::kLanguages).to_labeled();
  ASSERT_EQ(got.row_labels, exact.row_labels);
  ASSERT_EQ(got.col_labels, exact.col_labels);
  for (std::size_t r = 0; r < got.row_labels.size(); ++r)
    for (std::size_t c = 0; c < got.col_labels.size(); ++c)
      EXPECT_EQ(got.counts.at(r, c), exact.counts.at(r, c));

  // Every respondent row is distinct; the HLL should land near n.
  EXPECT_NEAR(sketch.distinct().estimate(),
              static_cast<double>(config.respondents),
              0.1 * static_cast<double>(config.respondents));

  // Reservoir filled to capacity.
  EXPECT_EQ(sketch.reservoir().items().size(),
            config.sketch.reservoir_capacity);
}

// The acceptance criterion: identical sketch state for any --threads value.
TEST(StreamStudy, ThreadCountInvariant) {
  auto config = small_config();
  const auto serial = rcr::core::run_stream_study(config);

  rcr::parallel::ThreadPool pool1(1), pool4(4);
  for (rcr::parallel::ThreadPool* pool : {&pool1, &pool4}) {
    config.pool = pool;
    const auto pooled = rcr::core::run_stream_study(config);

    EXPECT_EQ(pooled.rows(), serial.rows());
    EXPECT_EQ(pooled.blocks(), serial.blocks());
    // Bitwise equality of floating-point accumulations, not approximate.
    for (const char* column :
         {col::kYearsProgramming, col::kCoresTypical, col::kDatasetGb}) {
      EXPECT_EQ(pooled.moments(column).mean(), serial.moments(column).mean());
      EXPECT_EQ(pooled.moments(column).variance(),
                serial.moments(column).variance());
      for (double p : {0.01, 0.5, 0.99})
        EXPECT_EQ(pooled.quantile_sketch(column).quantile(p),
                  serial.quantile_sketch(column).quantile(p));
    }
    EXPECT_EQ(pooled.category_counts(col::kField),
              serial.category_counts(col::kField));
    EXPECT_EQ(pooled.distinct().estimate(), serial.distinct().estimate());
    const auto& pr = pooled.reservoir().items();
    const auto& sr = serial.reservoir().items();
    ASSERT_EQ(pr.size(), sr.size());
    for (std::size_t i = 0; i < pr.size(); ++i) {
      EXPECT_EQ(pr[i].index, sr[i].index);
      EXPECT_EQ(pr[i].value, sr[i].value);
    }
    const auto ph = pooled.heavy_hitters().top(10);
    const auto sh = serial.heavy_hitters().top(10);
    ASSERT_EQ(ph.size(), sh.size());
    for (std::size_t i = 0; i < ph.size(); ++i) {
      EXPECT_EQ(ph[i].key, sh[i].key);
      EXPECT_EQ(ph[i].count, sh[i].count);
    }
  }
}

// Block size must not change results either (different shard partition is
// allowed to change FP accumulation order, so exact counts only).
TEST(StreamStudy, BlockSizeChangesOnlyFloatingPointDetail) {
  auto config = small_config();
  const auto a = rcr::core::run_stream_study(config);
  config.block_rows = 997;
  const auto b = rcr::core::run_stream_study(config);
  EXPECT_EQ(a.rows(), b.rows());
  EXPECT_EQ(a.category_counts(col::kField), b.category_counts(col::kField));
  EXPECT_EQ(a.option_counts(col::kSePractices),
            b.option_counts(col::kSePractices));
  EXPECT_EQ(a.distinct().estimate(), b.distinct().estimate());
  // Reservoir priorities are pure functions of (seed, global index): the
  // sample is partition-invariant, not just thread-invariant.
  const auto& ra = a.reservoir().items();
  const auto& rb = b.reservoir().items();
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i)
    EXPECT_EQ(ra[i].index, rb[i].index);
  EXPECT_NEAR(a.moments(col::kDatasetGb).mean(),
              b.moments(col::kDatasetGb).mean(), 1e-9);
}

TEST(StreamStudy, CsvIngestMatchesGeneratedPopulation) {
  // Write a generated wave to CSV and stream it back through the sketch:
  // the file-backed path must agree with the direct-ingest path on every
  // exact statistic, and bitwise on partition-invariant state.
  auto config = small_config();
  config.respondents = 1500;
  const auto direct = rcr::core::run_stream_study(config);
  const auto full = rcr::synth::generate_wave(
      {config.wave, config.respondents, config.seed, nullptr});
  const std::string path = ::testing::TempDir() + "rcr_stream_wave.csv";
  rcr::data::write_csv_file(path, full);

  auto csv_config = config;
  csv_config.csv_path = path;
  const auto from_csv = rcr::core::run_stream_study(csv_config);

  EXPECT_EQ(from_csv.rows(), direct.rows());
  EXPECT_EQ(from_csv.category_counts(col::kField),
            direct.category_counts(col::kField));
  EXPECT_EQ(from_csv.option_counts(col::kLanguages),
            direct.option_counts(col::kLanguages));
  EXPECT_EQ(from_csv.option_counts(col::kSePractices),
            direct.option_counts(col::kSePractices));
  const auto exact = from_csv.crosstab(col::kField, col::kLanguages)
                         .to_labeled();
  const auto want = direct.crosstab(col::kField, col::kLanguages)
                        .to_labeled();
  ASSERT_EQ(exact.row_labels, want.row_labels);
  for (std::size_t r = 0; r < exact.row_labels.size(); ++r)
    for (std::size_t c = 0; c < exact.col_labels.size(); ++c)
      EXPECT_EQ(exact.counts.at(r, c), want.counts.at(r, c));
  // Moments: shortest-round-trip decimal literals re-parse to the exact
  // same doubles, but the CSV path accumulates sequentially while the
  // direct path Chan-merges per-shard sketches, so means agree only to
  // accumulation-order tolerance.
  for (const char* column :
       {col::kYearsProgramming, col::kCoresTypical, col::kDatasetGb}) {
    EXPECT_EQ(from_csv.moments(column).count(), direct.moments(column).count());
    EXPECT_NEAR(from_csv.moments(column).mean(), direct.moments(column).mean(),
                1e-9);
  }
  EXPECT_EQ(from_csv.distinct().estimate(), direct.distinct().estimate());
  const auto& ra = from_csv.reservoir().items();
  const auto& rb = direct.reservoir().items();
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].index, rb[i].index);
    EXPECT_EQ(ra[i].value, rb[i].value);
  }
}

TEST(StreamStudy, NonresponsePathStreamsSequentially) {
  auto config = small_config();
  config.respondents = 800;
  config.nonresponse_strength = 0.3;
  const auto sketch = rcr::core::run_stream_study(config);
  const auto full = rcr::synth::generate_wave(
      {config.wave, config.respondents, config.seed, nullptr,
       config.nonresponse_strength});
  EXPECT_EQ(sketch.rows(), full.row_count());
  EXPECT_EQ(sketch.category_counts(col::kField),
            full.categorical(col::kField).counts());
}

TEST(StreamStudy, RenderReportSmoke) {
  auto config = small_config();
  config.respondents = 1200;
  const auto sketch = rcr::core::run_stream_study(config);
  const std::string report = rcr::core::render_stream_report(sketch);
  EXPECT_NE(report.find("respondents"), std::string::npos);
  EXPECT_NE(report.find("Python"), std::string::npos);
  EXPECT_NE(report.find("Version control"), std::string::npos);
  // The heavy-hitter key separator must be humanized, never raw \x1F.
  EXPECT_EQ(report.find('\x1F'), std::string::npos);
}

}  // namespace
