// for_each_csv_row: the streaming reader must accept exactly what read_csv
// accepts and yield the identical row sequence, one O(1) scratch row at a
// time.
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/csv.hpp"
#include "data/table.hpp"
#include "util/error.hpp"

namespace {

rcr::data::Table make_schema() {
  rcr::data::Table t;
  t.add_numeric("score");
  auto& field = t.add_categorical("field", {"Physics", "Biology", "CS"});
  field.freeze();
  t.add_multiselect("langs", {"Python", "C++", "R"});
  return t;
}

const char* kCsv =
    "score,field,langs\n"
    "1.5,Physics,Python|C++\n"
    ",Biology,R\n"          // missing numeric
    "3.25,,Python\n"        // missing categorical
    "4,CS,\n"               // missing multiselect
    "5.5,\"Physics\",-\n"   // quoted cell; '-' = answered-none
    "6,Biology,Python|C++|R\n";

TEST(CsvStream, RowsIdenticalToReadCsv) {
  const auto schema = make_schema();
  std::istringstream whole_in(kCsv);
  const auto whole = rcr::data::read_csv(whole_in, schema);

  auto assembled = schema.clone_empty();
  std::size_t visits = 0;
  std::istringstream stream_in(kCsv);
  const std::size_t n = rcr::data::for_each_csv_row(
      stream_in, schema,
      [&](const rcr::data::Table& row, std::size_t index) {
        EXPECT_EQ(index, visits);
        EXPECT_EQ(row.row_count(), 1u);  // scratch holds exactly one row
        assembled.append_rows(row);
        ++visits;
      });
  EXPECT_EQ(n, whole.row_count());
  EXPECT_EQ(visits, whole.row_count());

  std::ostringstream a, b;
  rcr::data::write_csv(a, assembled);
  rcr::data::write_csv(b, whole);
  EXPECT_EQ(a.str(), b.str());
}

TEST(CsvStream, ReorderedHeaderAndCustomDelimiter) {
  const auto schema = make_schema();
  const char* csv =
      "langs;score;field\n"
      "Python!C++;2.5;CS\n"
      ";;\n";
  rcr::data::CsvOptions options;
  options.delimiter = ';';
  options.multiselect_separator = '!';

  std::istringstream whole_in(csv);
  const auto whole = rcr::data::read_csv(whole_in, schema, options);

  auto assembled = schema.clone_empty();
  std::istringstream stream_in(csv);
  rcr::data::for_each_csv_row(
      stream_in, schema,
      [&](const rcr::data::Table& row, std::size_t) {
        assembled.append_rows(row);
      },
      options);

  std::ostringstream a, b;
  rcr::data::write_csv(a, assembled);
  rcr::data::write_csv(b, whole);
  EXPECT_EQ(a.str(), b.str());
}

TEST(CsvStream, QuotedNewlinesStreamCorrectly) {
  // The write→read round-trip bug class: a quoted field containing CRLF /
  // LF spans physical lines, and the streaming reader must treat it as one
  // record exactly like read_csv does.
  rcr::data::Table schema;
  schema.add_categorical("note", {"line1\nline2", "cr\r\nlf", "plain"});
  schema.add_numeric("v");
  const char* csv =
      "note,v\n"
      "\"line1\nline2\",1\n"
      "\"cr\r\nlf\",2\n"
      "plain,3\n";

  std::istringstream whole_in(csv);
  const auto whole = rcr::data::read_csv(whole_in, schema);
  ASSERT_EQ(whole.row_count(), 3u);
  EXPECT_EQ(whole.categorical("note").label_at(0), "line1\nline2");
  EXPECT_EQ(whole.categorical("note").label_at(1), "cr\r\nlf");

  auto assembled = schema.clone_empty();
  std::istringstream stream_in(csv);
  const std::size_t n = rcr::data::for_each_csv_row(
      stream_in, schema,
      [&](const rcr::data::Table& row, std::size_t) {
        assembled.append_rows(row);
      });
  EXPECT_EQ(n, 3u);
  std::ostringstream a, b;
  rcr::data::write_csv(a, assembled);
  rcr::data::write_csv(b, whole);
  EXPECT_EQ(a.str(), b.str());
}

TEST(CsvStream, EmptyInputVisitsNothing) {
  const auto schema = make_schema();
  std::istringstream in("score,field,langs\n");
  std::size_t visits = 0;
  const std::size_t n = rcr::data::for_each_csv_row(
      in, schema,
      [&](const rcr::data::Table&, std::size_t) { ++visits; });
  EXPECT_EQ(n, 0u);
  EXPECT_EQ(visits, 0u);
}

TEST(CsvStream, RejectsMalformedInputLikeReadCsv) {
  const auto schema = make_schema();
  // Unknown frozen category; read_csv rejects, so must the streaming path.
  const char* bad =
      "score,field,langs\n"
      "1,Chemistry,Python\n";
  {
    std::istringstream in(bad);
    EXPECT_THROW(rcr::data::read_csv(in, schema), rcr::Error);
  }
  {
    std::istringstream in(bad);
    EXPECT_THROW(rcr::data::for_each_csv_row(
                     in, schema,
                     [](const rcr::data::Table&, std::size_t) {}),
                 rcr::Error);
  }
  // Wrong field count mid-file: rows before the error are still visited.
  const char* truncated =
      "score,field,langs\n"
      "1,CS,Python\n"
      "2,Biology\n";
  std::istringstream in(truncated);
  std::size_t visits = 0;
  EXPECT_THROW(rcr::data::for_each_csv_row(
                   in, schema,
                   [&](const rcr::data::Table&, std::size_t) { ++visits; }),
               rcr::Error);
  EXPECT_EQ(visits, 1u);
}

}  // namespace
