// The fused-engine contract, pinned: QueryEngine answers a whole batch of
// queries in one sharded scan and reproduces the serial per-query builders
// (kept verbatim in query::reference) bit for bit wherever bitwise identity
// is promised — always on single-shard tables, and for every count-style or
// dyadic-weight accumulator on multi-shard tables. Arbitrary fractional
// weights may reassociate across shard boundaries, but deterministically:
// any pool size yields the same bits as the serial engine walk.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "data/crosstab.hpp"
#include "data/table.hpp"
#include "obs/metrics.hpp"
#include "parallel/thread_pool.hpp"
#include "query/engine.hpp"
#include "query/reference.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rcr {
namespace {

std::uint64_t bits_of(double v) {
  std::uint64_t b = 0;
  std::memcpy(&b, &v, sizeof(v));
  return b;
}

struct BigTableOptions {
  std::size_t rows = 10000;  // 3 shards at the engine's 4096-row grain
  std::uint64_t seed = 1234;
  bool dyadic_weights = true;      // false: full-mantissa weights
  bool grown_dictionaries = false; // grow category dicts by label interning
  std::size_t blank_lo = 0;        // rows in [blank_lo, blank_hi) are
  std::size_t blank_hi = 0;        //   missing in every column
};

// field (5 categories) x career (4) x langs (10 options, L9 never chosen)
// x score x w, with per-column missingness. The first rows pin the label
// first-appearance order so grown dictionaries match the frozen ones.
data::Table make_big_table(const BigTableOptions& opt) {
  const std::vector<std::string> fields = {"f0", "f1", "f2", "f3", "f4"};
  const std::vector<std::string> careers = {"c0", "c1", "c2", "c3"};
  std::vector<std::string> langs;
  for (int o = 0; o < 10; ++o) langs.push_back("L" + std::to_string(o));

  data::Table t;
  auto& field = opt.grown_dictionaries
                    ? t.add_categorical("field")
                    : t.add_categorical("field", fields);
  auto& career = opt.grown_dictionaries
                     ? t.add_categorical("career")
                     : t.add_categorical("career", careers);
  auto& lang_col = t.add_multiselect("langs", langs);
  auto& score = t.add_numeric("score");
  auto& w = t.add_numeric("w");

  const double dyadic[] = {0.25, 0.5, 1.0, 2.0, 4.0};
  Rng rng(opt.seed);
  for (std::size_t i = 0; i < opt.rows; ++i) {
    if (i >= opt.blank_lo && i < opt.blank_hi) {
      field.push_missing();
      career.push_missing();
      lang_col.push_missing();
      score.push_missing();
      w.push_missing();
      continue;
    }
    // Rows 0..4 pin dictionary order; afterwards ~10% / ~7% missing.
    const bool pin = i < 5;
    if (!pin && rng.next_double() < 0.10) field.push_missing();
    else field.push(fields[pin ? i % fields.size() : rng.next_below(5)]);
    if (!pin && rng.next_double() < 0.07) career.push_missing();
    else career.push(careers[pin ? i % careers.size() : rng.next_below(4)]);
    if (!pin && rng.next_double() < 0.12) {
      lang_col.push_missing();
    } else {
      // Any subset of L0..L8; L9 stays a never-selected option.
      lang_col.push_mask(rng.next_u64() & 0x1FFULL);
    }
    if (!pin && rng.next_double() < 0.08) score.push_missing();
    else score.push(rng.normal() * 10.0 + rng.next_double());
    if (!pin && rng.next_double() < 0.05) w.push_missing();
    else if (opt.dyadic_weights) w.push(dyadic[rng.next_below(5)]);
    else w.push(rng.next_double() * 3.0 + 0.5);
  }
  return t;
}

std::vector<double> arbitrary_weights(std::size_t rows, std::uint64_t seed) {
  std::vector<double> w(rows);
  Rng rng(seed);
  for (auto& v : w) v = rng.next_double() * 2.0 + 0.1;
  return w;
}

void expect_crosstab_bitwise(const data::LabeledCrosstab& got,
                             const data::LabeledCrosstab& want) {
  ASSERT_EQ(got.row_labels, want.row_labels);
  ASSERT_EQ(got.col_labels, want.col_labels);
  ASSERT_EQ(got.counts.rows(), want.counts.rows());
  ASSERT_EQ(got.counts.cols(), want.counts.cols());
  for (std::size_t r = 0; r < want.counts.rows(); ++r)
    for (std::size_t c = 0; c < want.counts.cols(); ++c)
      EXPECT_EQ(bits_of(got.counts.at(r, c)), bits_of(want.counts.at(r, c)))
          << "cell (" << r << ", " << c << ")";
}

void expect_share_bitwise(const data::OptionShare& got,
                          const data::OptionShare& want) {
  EXPECT_EQ(got.label, want.label);
  EXPECT_EQ(bits_of(got.count), bits_of(want.count));
  EXPECT_EQ(bits_of(got.total), bits_of(want.total));
  EXPECT_EQ(bits_of(got.share.estimate), bits_of(want.share.estimate));
  EXPECT_EQ(bits_of(got.share.lo), bits_of(want.share.lo));
  EXPECT_EQ(bits_of(got.share.hi), bits_of(want.share.hi));
}

void expect_shares_bitwise(const std::vector<data::OptionShare>& got,
                           const std::vector<data::OptionShare>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t o = 0; o < want.size(); ++o) {
    SCOPED_TRACE("option " + want[o].label);
    expect_share_bitwise(got[o], want[o]);
  }
}

// --- bitwise equivalence against the serial reference builders --------------

// Unweighted count accumulators are exact under any association, so even
// the 3-shard table must reproduce the one-scan-per-query reference bitwise.
TEST(QueryEngineTest, UnweightedMultiShardMatchesReferenceBitwise) {
  const data::Table t = make_big_table({});
  ASSERT_GT(t.row_count(), query::kMinShardRows);  // really multi-shard

  query::QueryEngine engine(t);
  const auto ct = engine.add_crosstab("field", "career");
  const auto ms = engine.add_crosstab_multiselect("field", "langs");
  const auto os = engine.add_option_shares("langs");
  const auto cs = engine.add_category_shares("career");
  engine.run();

  expect_crosstab_bitwise(engine.crosstab(ct),
                          query::reference::crosstab(t, "field", "career"));
  expect_crosstab_bitwise(
      engine.crosstab(ms),
      query::reference::crosstab_multiselect(t, "field", "langs"));
  expect_shares_bitwise(engine.shares(os),
                        query::reference::option_shares(t, "langs"));
  expect_shares_bitwise(engine.shares(cs),
                        query::reference::category_shares(t, "career"));

  // L9 exists in the schema but no row selects it: present with count 0.
  EXPECT_EQ(engine.shares(os).back().label, "L9");
  EXPECT_EQ(engine.shares(os).back().count, 0.0);
}

// At or below kMinShardRows the engine runs one shard, which is the
// reference builders' left-to-right association exactly — arbitrary
// fractional weights included.
TEST(QueryEngineTest, WeightedSingleShardMatchesReferenceBitwise) {
  BigTableOptions opt;
  opt.rows = 3000;
  opt.dyadic_weights = false;
  const data::Table t = make_big_table(opt);
  const std::vector<double> ext = arbitrary_weights(t.row_count(), 99);

  query::QueryEngine engine(t);
  const auto ct =
      engine.add_crosstab("field", "career", std::optional<std::string>{"w"});
  const auto ms = engine.add_crosstab_multiselect(
      "field", "langs", std::optional<std::string>{"w"});
  const auto ws = engine.add_weighted_option_share("langs", "L3", ext);
  engine.run();

  expect_crosstab_bitwise(
      engine.crosstab(ct),
      query::reference::crosstab(t, "field", "career",
                                 std::optional<std::string>{"w"}));
  expect_crosstab_bitwise(
      engine.crosstab(ms),
      query::reference::crosstab_multiselect(t, "field", "langs",
                                             std::optional<std::string>{"w"}));
  expect_share_bitwise(
      engine.weighted_share(ws),
      query::reference::weighted_option_share(t, "langs", "L3", ext));
}

// Dyadic weights (quarters through fours) have exact partial sums in
// double, so shard-boundary reassociation cannot change the bits even on a
// multi-shard table.
TEST(QueryEngineTest, DyadicWeightsStayBitwiseAcrossShards) {
  const data::Table t = make_big_table({});  // 10000 rows, dyadic "w"
  ASSERT_GT(t.row_count(), query::kMinShardRows);

  query::QueryEngine engine(t);
  const auto ct =
      engine.add_crosstab("field", "career", std::optional<std::string>{"w"});
  const auto ms = engine.add_crosstab_multiselect(
      "field", "langs", std::optional<std::string>{"w"});
  engine.run();

  expect_crosstab_bitwise(
      engine.crosstab(ct),
      query::reference::crosstab(t, "field", "career",
                                 std::optional<std::string>{"w"}));
  expect_crosstab_bitwise(
      engine.crosstab(ms),
      query::reference::crosstab_multiselect(t, "field", "langs",
                                             std::optional<std::string>{"w"}));
}

// Full-mantissa weights on a multi-shard table: near the reference (the
// association differs), and bitwise invariant across pool sizes including
// the serial walk.
TEST(QueryEngineTest, ArbitraryWeightsMultiShardNearReferenceAndPoolStable) {
  BigTableOptions opt;
  opt.dyadic_weights = false;
  const data::Table t = make_big_table(opt);
  const std::vector<double> ext = arbitrary_weights(t.row_count(), 7);

  const auto run_engine = [&](parallel::ThreadPool* pool) {
    query::QueryEngine engine(t);
    engine.add_crosstab("field", "career", std::optional<std::string>{"w"});
    engine.add_weighted_option_share("langs", "L5", ext);
    engine.run(pool);
    return std::pair<data::LabeledCrosstab, data::OptionShare>{
        engine.crosstab(0), engine.weighted_share(1)};
  };

  const auto [serial_ct, serial_ws] = run_engine(nullptr);
  const auto ref_ct = query::reference::crosstab(
      t, "field", "career", std::optional<std::string>{"w"});
  const auto ref_ws =
      query::reference::weighted_option_share(t, "langs", "L5", ext);
  for (std::size_t r = 0; r < ref_ct.counts.rows(); ++r)
    for (std::size_t c = 0; c < ref_ct.counts.cols(); ++c)
      EXPECT_NEAR(serial_ct.counts.at(r, c), ref_ct.counts.at(r, c),
                  1e-9 * (1.0 + ref_ct.counts.at(r, c)));
  EXPECT_NEAR(serial_ws.share.estimate, ref_ws.share.estimate, 1e-12);

  for (const std::size_t threads : {1u, 2u, 8u}) {
    parallel::ThreadPool pool(threads);
    const auto [pooled_ct, pooled_ws] = run_engine(&pool);
    expect_crosstab_bitwise(pooled_ct, serial_ct);
    expect_share_bitwise(pooled_ws, serial_ws);
  }
}

// --- structure: missing bands, empty shards, dictionaries -------------------

// The middle shard of a 3-shard table is entirely missing (an all-blank
// row band): its partial is the identity and must merge away.
TEST(QueryEngineTest, AllMissingShardContributesIdentity) {
  BigTableOptions opt;
  opt.rows = 9000;
  opt.blank_lo = 4096;
  opt.blank_hi = 8192;  // exactly the second 4096-row shard
  const data::Table t = make_big_table(opt);

  query::QueryEngine engine(t);
  const auto ct = engine.add_crosstab("field", "career");
  const auto os = engine.add_option_shares("langs");
  const auto ns = engine.add_numeric_summary("score");
  engine.run();

  expect_crosstab_bitwise(engine.crosstab(ct),
                          query::reference::crosstab(t, "field", "career"));
  expect_shares_bitwise(engine.shares(os),
                        query::reference::option_shares(t, "langs"));
  // The band shrinks the answered totals accordingly.
  EXPECT_LT(engine.shares(os).front().total, 5000.0);
  EXPECT_GT(engine.numeric(ns).count, 0.0);
}

// A grown (label-interned) dictionary with the same first-appearance order
// answers identically to the frozen-schema table.
TEST(QueryEngineTest, FrozenAndGrownDictionariesAgreeBitwise) {
  BigTableOptions opt;
  const data::Table frozen = make_big_table(opt);
  opt.grown_dictionaries = true;
  const data::Table grown = make_big_table(opt);
  ASSERT_EQ(frozen.categorical("field").categories(),
            grown.categorical("field").categories());

  const auto run_one = [](const data::Table& t) {
    query::QueryEngine engine(t);
    engine.add_crosstab("field", "career");
    engine.add_category_shares("field");
    engine.run();
    return std::pair<data::LabeledCrosstab, std::vector<data::OptionShare>>{
        engine.crosstab(0), engine.shares(1)};
  };
  const auto [ct_frozen, cs_frozen] = run_one(frozen);
  const auto [ct_grown, cs_grown] = run_one(grown);
  expect_crosstab_bitwise(ct_grown, ct_frozen);
  expect_shares_bitwise(cs_grown, cs_frozen);
}

// A frozen category no row uses yields an all-zero crosstab row and a
// zero-count share — never a dropped label.
TEST(QueryEngineTest, UnusedFrozenCategoryKeepsZeroRow) {
  data::Table t;
  auto& a = t.add_categorical("a", {"x", "y", "ghost"});
  auto& b = t.add_categorical("b", {"u", "v"});
  for (int i = 0; i < 6; ++i) {
    a.push(i % 2 == 0 ? "x" : "y");
    b.push(i < 3 ? "u" : "v");
  }

  query::QueryEngine engine(t);
  const auto ct = engine.add_crosstab("a", "b");
  const auto cs = engine.add_category_shares("a");
  engine.run();

  const auto& got = engine.crosstab(ct);
  ASSERT_EQ(got.row_labels.size(), 3u);
  EXPECT_EQ(got.counts.at(2, 0), 0.0);
  EXPECT_EQ(got.counts.at(2, 1), 0.0);
  EXPECT_EQ(engine.shares(cs).back().label, "ghost");
  EXPECT_EQ(engine.shares(cs).back().count, 0.0);
  expect_crosstab_bitwise(got, query::reference::crosstab(t, "a", "b"));
}

// --- the query kinds without a data:: counterpart ---------------------------

TEST(QueryEngineTest, NumericSummaryMatchesDirectWalk) {
  const data::Table t = make_big_table({});
  const auto& values = t.numeric("score").values();
  double count = 0.0, sum = 0.0;
  double mn = std::numeric_limits<double>::infinity();
  double mx = -std::numeric_limits<double>::infinity();
  for (const double v : values) {
    if (data::NumericColumn::is_missing(v)) continue;
    count += 1.0;
    sum += v;
    mn = std::min(mn, v);
    mx = std::max(mx, v);
  }

  query::QueryEngine engine(t);
  const auto ns = engine.add_numeric_summary("score");
  engine.run();
  const auto& got = engine.numeric(ns);
  EXPECT_EQ(bits_of(got.count), bits_of(count));
  // Count/min/max are association-free; the sum is near across shards.
  EXPECT_NEAR(got.sum, sum, 1e-9 * (1.0 + std::abs(sum)));
  EXPECT_EQ(bits_of(got.min), bits_of(mn));
  EXPECT_EQ(bits_of(got.max), bits_of(mx));
  EXPECT_NEAR(got.mean(), sum / count, 1e-12);
}

TEST(QueryEngineTest, NumericSummaryOfAllMissingColumnIsEmpty) {
  data::Table t;
  auto& v = t.add_numeric("v");
  for (int i = 0; i < 10; ++i) v.push_missing();

  query::QueryEngine engine(t);
  const auto ns = engine.add_numeric_summary("v");
  engine.run();
  EXPECT_EQ(engine.numeric(ns).count, 0.0);
  EXPECT_TRUE(std::isnan(engine.numeric(ns).min));
  EXPECT_TRUE(std::isnan(engine.numeric(ns).max));
  EXPECT_EQ(engine.numeric(ns).mean(), 0.0);
}

TEST(QueryEngineTest, GroupAnsweredMatchesGroupRowsWalk) {
  const data::Table t = make_big_table({});

  query::QueryEngine engine(t);
  const auto vs_langs = engine.add_group_answered("field", "langs");
  const auto vs_score = engine.add_group_answered("field", "score");
  engine.run();

  const auto& langs = t.multiselect("langs");
  const auto& score = t.numeric("score");
  const auto groups = t.group_rows("field");
  ASSERT_EQ(engine.group_answered(vs_langs).size(), groups.size());
  for (std::size_t g = 0; g < groups.size(); ++g) {
    double n_langs = 0.0, n_score = 0.0;
    for (const std::size_t row : groups[g]) {
      if (!langs.is_missing(row)) n_langs += 1.0;
      if (!data::NumericColumn::is_missing(score.at(row))) n_score += 1.0;
    }
    EXPECT_EQ(bits_of(engine.group_answered(vs_langs)[g]), bits_of(n_langs))
        << "group " << g;
    EXPECT_EQ(bits_of(engine.group_answered(vs_score)[g]), bits_of(n_score))
        << "group " << g;
  }
}

// --- validation and error paths ---------------------------------------------

TEST(QueryEngineTest, ResultsRequireRunAndMatchingKind) {
  const data::Table t = make_big_table({.rows = 50});
  query::QueryEngine engine(t);
  const auto ct = engine.add_crosstab("field", "career");
  const auto os = engine.add_option_shares("langs");
  EXPECT_FALSE(engine.ran());
  EXPECT_EQ(engine.query_count(), 2u);
  EXPECT_THROW(engine.crosstab(ct), Error);  // run() not called yet

  engine.run();
  EXPECT_TRUE(engine.ran());
  EXPECT_THROW(engine.crosstab(99), Error);       // unknown id
  EXPECT_THROW(engine.weighted_share(ct), Error); // wrong kind
  EXPECT_THROW(engine.shares(ct), Error);
  EXPECT_NO_THROW(engine.crosstab(ct));
  EXPECT_NO_THROW(engine.shares(os));

  // Registering another query invalidates prior results until rerun.
  engine.add_numeric_summary("score");
  EXPECT_FALSE(engine.ran());
  EXPECT_THROW(engine.crosstab(ct), Error);
  engine.run();
  EXPECT_NO_THROW(engine.crosstab(ct));
}

TEST(QueryEngineTest, RegistrationValidatesColumns) {
  data::Table t;
  t.add_categorical("empty");  // zero categories
  auto& a = t.add_categorical("a", {"x"});
  auto& m = t.add_multiselect("m", {"o1", "o2"});
  a.push("x");
  m.push_mask(1);
  t.add_numeric("v").push(1.0);

  query::QueryEngine engine(t);
  EXPECT_THROW(engine.add_crosstab("empty", "a"), Error);
  EXPECT_THROW(engine.add_crosstab("a", "m"), Error);   // kind mismatch
  EXPECT_THROW(engine.add_crosstab("a", "nope"), Error);
  EXPECT_THROW(engine.add_crosstab_multiselect("empty", "m"), Error);
  EXPECT_THROW(
      engine.add_crosstab("a", "a", std::optional<std::string>{"m"}), Error);
  const std::vector<double> short_w = {1.0, 2.0};
  EXPECT_THROW(engine.add_weighted_option_share("m", "o1", short_w), Error);
  const std::vector<double> ok_w = {1.0};
  EXPECT_THROW(engine.add_weighted_option_share("m", "nope", ok_w), Error);
  EXPECT_THROW(engine.add_numeric_summary("a"), Error);
  EXPECT_THROW(engine.add_group_answered("empty", "v"), Error);
  EXPECT_THROW(engine.add_group_answered("a", "nope"), Error);
}

TEST(QueryEngineTest, NegativeWeightThrowsSeriallyAndPooled) {
  BigTableOptions opt;
  opt.rows = 10000;
  const data::Table base = make_big_table(opt);
  data::Table t = base;
  // Pin one last-shard row: both categories present, weight negative.
  t.categorical("field").set_code(8000, 0);
  t.categorical("career").set_code(8000, 0);
  t.numeric("w").set(8000, -1.0);

  query::QueryEngine engine(t);
  engine.add_crosstab("field", "career", std::optional<std::string>{"w"});
  EXPECT_THROW(engine.run(), Error);

  parallel::ThreadPool pool(4);
  query::QueryEngine pooled(t);
  pooled.add_crosstab("field", "career", std::optional<std::string>{"w"});
  EXPECT_THROW(pooled.run(&pool), Error);  // pool rethrows on the caller
  EXPECT_FALSE(pooled.ran());
}

TEST(QueryEngineTest, NoAnsweredRowsThrowsTheBuildersError) {
  data::Table t;
  auto& m = t.add_multiselect("m", {"o1"});
  auto& c = t.add_categorical("c", {"x"});
  for (int i = 0; i < 3; ++i) {
    m.push_missing();
    c.push_missing();
  }
  {
    query::QueryEngine engine(t);
    engine.add_option_shares("m");
    EXPECT_THROW(engine.run(), Error);
  }
  {
    query::QueryEngine engine(t);
    engine.add_category_shares("c");
    EXPECT_THROW(engine.run(), Error);
  }
  {
    const std::vector<double> w = {1.0, 1.0, 1.0};
    query::QueryEngine engine(t);
    engine.add_weighted_option_share("m", "o1", w);
    EXPECT_THROW(engine.run(), Error);
  }
}

// --- instrumentation ---------------------------------------------------------

#ifndef RCR_OBS_DISABLED
TEST(QueryEngineTest, ObsCountsFusedVsNaiveEquivalentScans) {
  const data::Table t = make_big_table({.rows = 500});
  auto& fused = obs::registry().counter("query.scan.fused");
  auto& naive = obs::registry().counter("query.scan.naive_equivalent");
  auto& rows = obs::registry().counter("query.rows");
  const auto fused0 = fused.total();
  const auto naive0 = naive.total();
  const auto rows0 = rows.total();

  query::QueryEngine engine(t);
  engine.add_crosstab("field", "career");
  engine.add_option_shares("langs");
  engine.add_numeric_summary("score");
  engine.run();

  // One fused pass replaced three per-query full-table scans.
  EXPECT_EQ(fused.total(), fused0 + 1);
  EXPECT_EQ(naive.total(), naive0 + 3);
  EXPECT_EQ(rows.total(), rows0 + t.row_count());
}
#endif

}  // namespace
}  // namespace rcr
