#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "stats/bootstrap.hpp"
#include "stats/ci.hpp"
#include "stats/descriptive.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rcr::stats {
namespace {

std::vector<double> normal_sample(std::size_t n, std::uint64_t seed) {
  rcr::Rng rng(seed);
  std::vector<double> v(n);
  for (double& x : v) x = rng.normal(5.0, 2.0);
  return v;
}

TEST(BootstrapTest, EstimateMatchesStatistic) {
  const auto data = normal_sample(200, 1);
  const auto r = bootstrap(
      data, [](std::span<const double> x) { return mean(x); });
  EXPECT_DOUBLE_EQ(r.estimate, mean(data));
  EXPECT_EQ(r.replicates.size(), 2000u);
}

TEST(BootstrapTest, DeterministicForSeed) {
  const auto data = normal_sample(100, 2);
  BootstrapOptions opts;
  opts.seed = 99;
  const auto a = bootstrap(
      data, [](std::span<const double> x) { return mean(x); }, opts);
  const auto b = bootstrap(
      data, [](std::span<const double> x) { return mean(x); }, opts);
  EXPECT_EQ(a.replicates, b.replicates);
}

TEST(BootstrapTest, SerialAndParallelIdentical) {
  const auto data = normal_sample(150, 3);
  rcr::parallel::ThreadPool pool(3);
  BootstrapOptions serial_opts;
  serial_opts.seed = 7;
  BootstrapOptions parallel_opts = serial_opts;
  parallel_opts.pool = &pool;
  const auto s = bootstrap(
      data, [](std::span<const double> x) { return mean(x); }, serial_opts);
  const auto p = bootstrap(
      data, [](std::span<const double> x) { return mean(x); }, parallel_opts);
  EXPECT_EQ(s.replicates, p.replicates);
  EXPECT_DOUBLE_EQ(s.percentile_ci.lo, p.percentile_ci.lo);
  EXPECT_DOUBLE_EQ(s.percentile_ci.hi, p.percentile_ci.hi);
}

TEST(BootstrapTest, StdErrorTracksTheory) {
  // SE of the mean ≈ sigma / sqrt(n) = 2 / sqrt(400) = 0.1.
  const auto data = normal_sample(400, 4);
  BootstrapOptions opts;
  opts.replicates = 4000;
  const auto r = bootstrap(
      data, [](std::span<const double> x) { return mean(x); }, opts);
  EXPECT_NEAR(r.std_error, 0.1, 0.03);
  EXPECT_NEAR(r.bias, 0.0, 0.02);
}

TEST(BootstrapTest, PercentileCiContainsEstimateForSmoothStat) {
  const auto data = normal_sample(300, 5);
  const auto r = bootstrap(
      data, [](std::span<const double> x) { return mean(x); });
  EXPECT_LT(r.percentile_ci.lo, r.estimate);
  EXPECT_GT(r.percentile_ci.hi, r.estimate);
  EXPECT_LT(r.normal_ci.lo, r.estimate);
  EXPECT_GT(r.normal_ci.hi, r.estimate);
}

TEST(BootstrapTest, ProportionAgreesWithWilson) {
  rcr::Rng rng(6);
  std::vector<double> binary;
  for (int i = 0; i < 500; ++i) binary.push_back(rng.bernoulli(0.3) ? 1 : 0);
  BootstrapOptions opts;
  opts.replicates = 4000;
  const auto boot = bootstrap_proportion(binary, opts);
  const double successes = mean(binary) * binary.size();
  const auto wilson = wilson_ci(successes, binary.size());
  EXPECT_NEAR(boot.percentile_ci.lo, wilson.lo, 0.02);
  EXPECT_NEAR(boot.percentile_ci.hi, wilson.hi, 0.02);
}

TEST(BootstrapTest, ZeroVarianceDataGivesDegenerateInterval) {
  const std::vector<double> constant(50, 3.0);
  const auto r = bootstrap(
      constant, [](std::span<const double> x) { return mean(x); });
  EXPECT_DOUBLE_EQ(r.std_error, 0.0);
  EXPECT_DOUBLE_EQ(r.percentile_ci.lo, 3.0);
  EXPECT_DOUBLE_EQ(r.percentile_ci.hi, 3.0);
}

TEST(BootstrapTest, MedianStatisticWorks) {
  const auto data = normal_sample(201, 8);
  const auto r = bootstrap(
      data, [](std::span<const double> x) { return median(x); });
  EXPECT_NEAR(r.estimate, 5.0, 0.5);
  EXPECT_GT(r.std_error, 0.0);
}

TEST(BootstrapTest, RejectsBadInput) {
  const std::vector<double> empty;
  EXPECT_THROW(
      bootstrap(empty, [](std::span<const double> x) { return mean(x); }),
      rcr::Error);
  BootstrapOptions opts;
  opts.replicates = 1;
  EXPECT_THROW(bootstrap(normal_sample(10, 1),
                         [](std::span<const double> x) { return mean(x); },
                         opts),
               rcr::Error);
  EXPECT_THROW(bootstrap_proportion(std::vector<double>{0.0, 0.5}),
               rcr::Error);
}

// Property: percentile CI endpoints are monotone in confidence level.
class BootstrapConfidenceTest : public ::testing::TestWithParam<double> {};

TEST_P(BootstrapConfidenceTest, WidthGrowsWithConfidence) {
  const auto data = normal_sample(120, 10);
  BootstrapOptions narrow, wide;
  narrow.confidence = GetParam();
  wide.confidence = std::min(0.995, GetParam() + 0.09);
  const auto stat = [](std::span<const double> x) { return mean(x); };
  const auto a = bootstrap(data, stat, narrow);
  const auto b = bootstrap(data, stat, wide);
  EXPECT_GE(b.percentile_ci.width(), a.percentile_ci.width() - 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Levels, BootstrapConfidenceTest,
                         ::testing::Values(0.5, 0.8, 0.9));

}  // namespace
}  // namespace rcr::stats
