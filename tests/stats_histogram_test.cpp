#include <gtest/gtest.h>

#include <vector>

#include "stats/histogram.hpp"
#include "util/error.hpp"

namespace rcr::stats {
namespace {

TEST(HistogramTest, BasicBinning) {
  Histogram h(0.0, 10.0, 5);
  h.add(1.0);   // bin 0
  h.add(3.9);   // bin 1
  h.add(4.0);   // bin 2
  h.add(9.99);  // bin 4
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(1), 1.0);
  EXPECT_DOUBLE_EQ(h.count(2), 1.0);
  EXPECT_DOUBLE_EQ(h.count(3), 0.0);
  EXPECT_DOUBLE_EQ(h.count(4), 1.0);
  EXPECT_DOUBLE_EQ(h.total(), 4.0);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.25);
}

TEST(HistogramTest, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(HistogramTest, OutliersClampToEdgeBins) {
  Histogram h(0.0, 10.0, 5);
  h.add(-100.0);
  h.add(1e9);
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(4), 1.0);
}

TEST(HistogramTest, WeightedAdds) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.25, 2.5);
  h.add(0.75, 0.5);
  EXPECT_DOUBLE_EQ(h.count(0), 2.5);
  EXPECT_DOUBLE_EQ(h.fraction(1), 0.5 / 3.0);
  EXPECT_THROW(h.add(0.5, -1.0), rcr::Error);
}

TEST(HistogramTest, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 5), rcr::Error);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), rcr::Error);
}

TEST(Log2HistogramTest, BinsPowersOfTwo) {
  Log2Histogram h(0, 4);  // [1,2), [2,4), [4,8), [8,16)
  h.add(1.0);
  h.add(3.0);
  h.add(4.0);
  h.add(15.9);
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(1), 1.0);
  EXPECT_DOUBLE_EQ(h.count(2), 1.0);
  EXPECT_DOUBLE_EQ(h.count(3), 1.0);
  EXPECT_EQ(h.bin_label(1), "[2^1, 2^2)");
}

TEST(Log2HistogramTest, ClampsAndNegativeExponents) {
  Log2Histogram h(-2, 2);  // [0.25,0.5), [0.5,1), [1,2), [2,4)
  h.add(0.3);
  h.add(0.001);  // clamps to the first bin
  h.add(100.0);  // clamps to the last bin
  EXPECT_DOUBLE_EQ(h.count(0), 2.0);
  EXPECT_DOUBLE_EQ(h.count(3), 1.0);
  EXPECT_THROW(h.add(0.0), rcr::Error);
  EXPECT_THROW(h.add(-2.0), rcr::Error);
}

TEST(EmpiricalCdfTest, UnweightedSteps) {
  const auto cdf = empirical_cdf(std::vector<double>{3.0, 1.0, 2.0, 2.0});
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0].value, 1.0);
  EXPECT_DOUBLE_EQ(cdf[0].cumulative, 0.25);
  EXPECT_DOUBLE_EQ(cdf[1].value, 2.0);
  EXPECT_DOUBLE_EQ(cdf[1].cumulative, 0.75);
  EXPECT_DOUBLE_EQ(cdf[2].cumulative, 1.0);
}

TEST(EmpiricalCdfTest, WeightedSteps) {
  const std::vector<double> v = {1.0, 2.0};
  const std::vector<double> w = {3.0, 1.0};
  const auto cdf = empirical_cdf(v, w);
  EXPECT_DOUBLE_EQ(cdf[0].cumulative, 0.75);
  EXPECT_DOUBLE_EQ(cdf[1].cumulative, 1.0);
}

TEST(EmpiricalCdfTest, RejectsBadInput) {
  EXPECT_THROW(empirical_cdf(std::vector<double>{}), rcr::Error);
  EXPECT_THROW(
      empirical_cdf(std::vector<double>{1.0}, std::vector<double>{1.0, 2.0}),
      rcr::Error);
  EXPECT_THROW(
      empirical_cdf(std::vector<double>{1.0}, std::vector<double>{0.0}),
      rcr::Error);
}

}  // namespace
}  // namespace rcr::stats
