#include <gtest/gtest.h>

#include <cmath>

#include "kernels/reduction.hpp"
#include "util/error.hpp"

namespace rcr::kernels {
namespace {

rcr::parallel::ThreadPool& pool() {
  static rcr::parallel::ThreadPool p(4);
  return p;
}

TEST(ReductionTest, CountsEveryValue) {
  const auto r = reduce_stream_serial(100000, 7);
  EXPECT_EQ(r.count, 100000u);
  std::uint64_t hist_total = 0;
  for (auto c : r.histogram) hist_total += c;
  EXPECT_EQ(hist_total, r.count);
}

TEST(ReductionTest, MomentsMatchUniformDistribution) {
  const std::size_t n = 2000000;
  const auto r = reduce_stream_serial(n, 7);
  EXPECT_NEAR(r.sum / static_cast<double>(n), 0.5, 0.002);
  EXPECT_NEAR(r.sum_squares / static_cast<double>(n), 1.0 / 3.0, 0.002);
}

TEST(ReductionTest, HistogramApproximatelyUniform) {
  const std::size_t n = 640000;
  const auto r = reduce_stream_serial(n, 11);
  const double expected =
      static_cast<double>(n) / ReductionResult::kBins;  // 10000 per bin
  for (auto c : r.histogram) {
    EXPECT_NEAR(static_cast<double>(c), expected, 5.0 * std::sqrt(expected));
  }
}

TEST(ReductionTest, ParallelIdenticalToSerial) {
  for (std::size_t n : {100u, 8192u, 50001u}) {
    const auto s = reduce_stream_serial(n, 3);
    const auto p = reduce_stream_parallel(pool(), n, 3);
    EXPECT_EQ(s.histogram, p.histogram) << n;
    EXPECT_EQ(s.count, p.count);
    // Sums may differ only by float reassociation across partials.
    EXPECT_NEAR(s.sum, p.sum, 1e-7);
    EXPECT_NEAR(s.sum_squares, p.sum_squares, 1e-7);
  }
}

TEST(ReductionTest, DifferentSeedsDiffer) {
  const auto a = reduce_stream_serial(10000, 1);
  const auto b = reduce_stream_serial(10000, 2);
  EXPECT_NE(a.checksum(), b.checksum());
}

TEST(ReductionTest, ChecksumIsStable) {
  const auto a = reduce_stream_serial(12345, 9);
  const auto b = reduce_stream_serial(12345, 9);
  EXPECT_DOUBLE_EQ(a.checksum(), b.checksum());
}

TEST(ReductionTest, RejectsEmptyStream) {
  EXPECT_THROW(reduce_stream_serial(0, 1), rcr::Error);
  EXPECT_THROW(reduce_stream_parallel(pool(), 0, 1), rcr::Error);
}

}  // namespace
}  // namespace rcr::kernels
