#include <gtest/gtest.h>

#include <cmath>

#include "trend/trend.hpp"
#include "util/error.hpp"

namespace rcr::trend {
namespace {

// Builds a wave with `hits` of `n` rows selecting option "x" of column "m",
// and the matching single-choice column "c" set to "yes"/"no".
data::Table make_wave(std::size_t hits, std::size_t n) {
  data::Table t;
  auto& m = t.add_multiselect("m", {"x", "y"});
  auto& c = t.add_categorical("c", {"yes", "no"});
  for (std::size_t i = 0; i < n; ++i) {
    const bool hit = i < hits;
    m.push_mask(hit ? 0b01 : 0b10);
    c.push(hit ? "yes" : "no");
  }
  return t;
}

TEST(CompareOptionTest, CountsAndDirection) {
  const auto w1 = make_wave(10, 100);   // 10%
  const auto w2 = make_wave(300, 600);  // 50%
  auto t = compare_option(w1, w2, "m", "x");
  EXPECT_DOUBLE_EQ(t.count1, 10.0);
  EXPECT_DOUBLE_EQ(t.n1, 100.0);
  EXPECT_DOUBLE_EQ(t.count2, 300.0);
  EXPECT_NEAR(t.share1.estimate, 0.1, 1e-12);
  EXPECT_NEAR(t.share2.estimate, 0.5, 1e-12);
  EXPECT_GT(t.test.diff, 0.0);  // wave2 minus wave1
  EXPECT_LT(t.test.p_value, 1e-6);
  EXPECT_GT(t.odds_ratio, 1.0);

  std::vector<ShareTrend> battery = {t};
  adjust_and_classify(battery);
  EXPECT_EQ(battery[0].direction, Direction::kIncrease);
}

TEST(CompareOptionTest, MissingRowsExcluded) {
  auto w1 = make_wave(5, 10);
  w1.multiselect("m").push_missing();
  w1.categorical("c").push_missing();
  const auto w2 = make_wave(5, 10);
  const auto t = compare_option(w1, w2, "m", "x");
  EXPECT_DOUBLE_EQ(t.n1, 10.0);  // the missing row does not count
}

TEST(CompareCategoryTest, Works) {
  const auto w1 = make_wave(20, 100);
  const auto w2 = make_wave(20, 100);
  const auto t = compare_category(w1, w2, "c", "yes");
  EXPECT_NEAR(t.share1.estimate, 0.2, 1e-12);
  EXPECT_NEAR(t.share2.estimate, 0.2, 1e-12);
  EXPECT_NEAR(t.test.p_value, 1.0, 1e-9);
  std::vector<ShareTrend> battery = {t};
  adjust_and_classify(battery);
  EXPECT_EQ(battery[0].direction, Direction::kStable);
}

TEST(ComparePredicateTest, NulloptExcludes) {
  const auto w1 = make_wave(4, 10);
  const auto w2 = make_wave(6, 10);
  const auto t = compare_predicate(
      w1, w2, "custom",
      [](const data::Table& table, std::size_t i) -> std::optional<bool> {
        if (i % 2 == 1) return std::nullopt;  // half the rows abstain
        return table.categorical("c").code_at(i) == 0;
      });
  EXPECT_DOUBLE_EQ(t.n1, 5.0);
  EXPECT_DOUBLE_EQ(t.n2, 5.0);
}

TEST(CompareOptionTest, UnknownOptionThrows) {
  const auto w1 = make_wave(1, 10);
  EXPECT_THROW(compare_option(w1, w1, "m", "zzz"), rcr::Error);
}

TEST(OptionBatteryTest, CoversAllOptionsWithHolm) {
  const auto w1 = make_wave(10, 100);
  const auto w2 = make_wave(300, 600);
  const auto battery = option_battery(w1, w2, "m");
  ASSERT_EQ(battery.size(), 2u);
  // Holm-adjusted p >= raw p.
  for (const auto& t : battery) EXPECT_GE(t.p_adjusted, t.test.p_value);
  // "x" rose, "y" fell (complementary in this construction).
  EXPECT_EQ(battery[0].direction, Direction::kIncrease);
  EXPECT_EQ(battery[1].direction, Direction::kDecrease);
}

TEST(AdjustClassifyTest, BhIsNoMoreConservativeThanHolm) {
  const auto w1 = make_wave(10, 100);
  const auto w2 = make_wave(300, 600);
  std::vector<ShareTrend> holm = {
      compare_option(w1, w2, "m", "x"), compare_option(w1, w2, "m", "y"),
      compare_category(w1, w2, "c", "yes")};
  auto bh = holm;
  adjust_and_classify(holm, 0.05, Multiplicity::kHolm);
  adjust_and_classify(bh, 0.05, Multiplicity::kBenjaminiHochberg);
  for (std::size_t i = 0; i < holm.size(); ++i) {
    EXPECT_LE(bh[i].p_adjusted, holm[i].p_adjusted + 1e-12);
    EXPECT_GE(bh[i].p_adjusted, bh[i].test.p_value);
  }
}

TEST(AdjustClassifyTest, EmptyBatteryIsFine) {
  std::vector<ShareTrend> empty;
  EXPECT_NO_THROW(adjust_and_classify(empty));
}

TEST(AdoptionCurveTest, RisingAdoptionHasPositiveSlope) {
  const auto w1 = make_wave(10, 200);   // 5% in 2011
  const auto w2 = make_wave(240, 400);  // 60% in 2024
  const auto c = fit_adoption_curve(w1, 2011, w2, 2024, "m", "x");
  EXPECT_TRUE(c.converged);
  EXPECT_GT(c.slope_per_year, 0.0);
  // Fitted shares reproduce the observed ones (two points, two params).
  EXPECT_NEAR(c.share_2011, 0.05, 0.01);
  EXPECT_NEAR(c.share_2024, 0.60, 0.01);
  // Midpoint falls between the waves (5% -> 60% crosses 50% before 2024).
  EXPECT_GT(c.midpoint_year, 2011.0);
  EXPECT_LT(c.midpoint_year, 2024.0);
  EXPECT_NEAR(c.predict(c.midpoint_year), 0.5, 1e-6);
}

TEST(AdoptionCurveTest, DecliningAdoptionHasNegativeSlope) {
  const auto w1 = make_wave(150, 200);
  const auto w2 = make_wave(40, 400);
  const auto c = fit_adoption_curve(w1, 2011, w2, 2024, "m", "x");
  EXPECT_LT(c.slope_per_year, 0.0);
}

TEST(AdoptionCurveTest, RejectsUnorderedWaves) {
  const auto w = make_wave(5, 10);
  EXPECT_THROW(fit_adoption_curve(w, 2024, w, 2011, "m", "x"), rcr::Error);
}

TEST(DistributionShiftTest, DetectsShift) {
  const auto w1 = make_wave(90, 100);  // mostly "yes"
  const auto w2 = make_wave(10, 100);  // mostly "no"
  const auto r = distribution_shift_test(w1, w2, "c");
  EXPECT_LT(r.p_value, 1e-10);
  EXPECT_GT(r.cramers_v, 0.5);
}

TEST(DistributionShiftTest, NoShiftHighP) {
  const auto w1 = make_wave(50, 100);
  const auto w2 = make_wave(250, 500);
  const auto r = distribution_shift_test(w1, w2, "c");
  EXPECT_GT(r.p_value, 0.9);
}

// Two waves with a grouping column: group "A" answers the multi-select
// fully; group "B" is padded with rows whose answer is MISSING, so its
// row count clears any small threshold while its answered count does not.
data::Table make_grouped_wave(std::size_t b_answered, std::size_t b_missing,
                              std::size_t b_hits) {
  data::Table t;
  auto& g = t.add_categorical("g", {"A", "B"});
  auto& m = t.add_multiselect("m", {"x", "y"});
  for (std::size_t i = 0; i < 12; ++i) {  // group A: 12 answered rows
    g.push("A");
    m.push_mask(i < 6 ? 0b01 : 0b10);
  }
  for (std::size_t i = 0; i < b_answered; ++i) {
    g.push("B");
    m.push_mask(i < b_hits ? 0b01 : 0b10);
  }
  for (std::size_t i = 0; i < b_missing; ++i) {
    g.push("B");
    m.push_missing();
  }
  return t;
}

TEST(PerGroupTrendTest, GateCountsAnsweredRowsNotGroupSize) {
  // Group B has 8 rows in each wave — over the min_group_n=5 gate by raw
  // row count — but only 3 of them actually answered the multi-select.
  // The header's contract gates on ANSWERED rows, so B must be skipped;
  // the pre-fix code gated on row_count() and let B through with its
  // 3-row "sample".
  const auto w1 = make_grouped_wave(3, 5, 1);
  const auto w2 = make_grouped_wave(3, 5, 2);
  const auto battery = per_group_trend(w1, w2, "g", "m", "x", 5);
  ASSERT_EQ(battery.size(), 1u);
  EXPECT_EQ(battery[0].indicator, "A");

  // With every B row answering, B clears the same gate.
  const auto full1 = make_grouped_wave(8, 0, 2);
  const auto full2 = make_grouped_wave(8, 0, 6);
  const auto both = per_group_trend(full1, full2, "g", "m", "x", 5);
  ASSERT_EQ(both.size(), 2u);
  EXPECT_EQ(both[0].indicator, "A");
  EXPECT_EQ(both[1].indicator, "B");
}

// --- share-vector pairing validation ----------------------------------------

data::OptionShare share_of(const std::string& label, double count,
                           double total) {
  data::OptionShare s;
  s.label = label;
  s.count = count;
  s.total = total;
  return s;
}

TEST(AppendShareTrendsTest, MatchedWavesReproduceTrendFromCounts) {
  const std::vector<data::OptionShare> w1 = {share_of("x", 10, 100),
                                             share_of("y", 40, 100)};
  const std::vector<data::OptionShare> w2 = {share_of("x", 300, 600),
                                             share_of("y", 120, 600)};
  std::vector<ShareTrend> out;
  append_share_trends(out, w1, w2);
  ASSERT_EQ(out.size(), 2u);
  const auto direct = trend_from_counts("x", 10, 100, 300, 600);
  EXPECT_DOUBLE_EQ(out[0].test.p_value, direct.test.p_value);
  EXPECT_DOUBLE_EQ(out[0].test.diff, direct.test.diff);
}

TEST(AppendShareTrendsTest, ShuffledOptionOrderFailsLoudly) {
  // Same option set, different order: silent index pairing would compare
  // "x" against "y". The validated path throws, naming the mismatch.
  const std::vector<data::OptionShare> w1 = {share_of("x", 10, 100),
                                             share_of("y", 40, 100)};
  const std::vector<data::OptionShare> shuffled = {share_of("y", 120, 600),
                                                   share_of("x", 300, 600)};
  std::vector<ShareTrend> out;
  EXPECT_THROW(append_share_trends(out, w1, shuffled), rcr::Error);
  EXPECT_THROW(option_battery_from_shares(w1, shuffled), rcr::Error);
  try {
    option_battery_from_shares(w1, shuffled);
    FAIL() << "expected a label-mismatch error";
  } catch (const rcr::Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("x"), std::string::npos) << msg;
    EXPECT_NE(msg.find("y"), std::string::npos) << msg;
  }
}

TEST(AppendShareTrendsTest, MissingOptionFailsLoudly) {
  const std::vector<data::OptionShare> w1 = {share_of("x", 10, 100),
                                             share_of("y", 40, 100)};
  // One wave dropped an option entirely: sizes disagree.
  const std::vector<data::OptionShare> missing = {share_of("x", 300, 600)};
  std::vector<ShareTrend> out;
  EXPECT_THROW(append_share_trends(out, w1, missing), rcr::Error);
  EXPECT_THROW(option_battery_from_shares(w1, missing), rcr::Error);
}

// --- N-wave trends ----------------------------------------------------------

TEST(MultiWaveTrendTest, ValidatesItsCounts) {
  EXPECT_THROW(
      multi_wave_trend_from_counts("i", {{2011.0, 1.0, 10.0}}), rcr::Error);
  EXPECT_THROW(multi_wave_trend_from_counts(
                   "i", {{2024.0, 1.0, 10.0}, {2011.0, 2.0, 10.0}}),
               rcr::Error);
  EXPECT_THROW(multi_wave_trend_from_counts(
                   "i", {{2011.0, 11.0, 10.0}, {2024.0, 2.0, 10.0}}),
               rcr::Error);
  EXPECT_THROW(multi_wave_trend_from_counts(
                   "i", {{2011.0, 0.0, 0.0}, {2024.0, 2.0, 10.0}}),
               rcr::Error);
}

TEST(MultiWaveTrendTest, TwoWaveSegmentIsExactlyTheTwoWaveTest) {
  const auto multi = multi_wave_trend_from_counts(
      "x", {{2011.0, 10.0, 100.0}, {2024.0, 300.0, 600.0}});
  const auto two = trend_from_counts("x", 10, 100, 300, 600);
  ASSERT_EQ(multi.segments.size(), 1u);
  EXPECT_DOUBLE_EQ(multi.segments[0].p_value, two.test.p_value);
  EXPECT_DOUBLE_EQ(multi.segments[0].diff, two.test.diff);
  EXPECT_DOUBLE_EQ(multi.shares[0].estimate, two.share1.estimate);
  EXPECT_DOUBLE_EQ(multi.shares[1].estimate, two.share2.estimate);
  EXPECT_DOUBLE_EQ(multi.shares[0].lo, two.share1.lo);
  EXPECT_DOUBLE_EQ(multi.shares[1].hi, two.share2.hi);
}

TEST(MultiWaveTrendTest, ThreeWaveBatteryOneHolmFamily) {
  // "x" rises monotonically and hugely; "y" is flat.
  const std::vector<double> years = {2011.0, 2017.0, 2024.0};
  const std::vector<std::vector<data::OptionShare>> waves = {
      {share_of("x", 10, 100), share_of("y", 30, 100)},
      {share_of("x", 150, 300), share_of("y", 92, 300)},
      {share_of("x", 540, 600), share_of("y", 180, 600)},
  };
  const auto battery = multi_wave_option_battery(years, waves);
  ASSERT_EQ(battery.size(), 2u);
  const auto& x = battery[0];
  const auto& y = battery[1];
  EXPECT_EQ(x.indicator, "x");
  ASSERT_EQ(x.segments.size(), 2u);
  EXPECT_EQ(x.direction, Direction::kIncrease);
  EXPECT_LT(x.overall_p_adjusted, 0.05);
  // Both of x's piecewise segments rise significantly even after sharing
  // one Holm family with the whole battery.
  for (std::size_t s = 0; s < 2; ++s) {
    EXPECT_GT(x.segments[s].diff, 0.0);
    EXPECT_LT(x.segment_p_adjusted[s], 0.05);
    // One family: adjusted never below raw.
    EXPECT_GE(x.segment_p_adjusted[s], x.segments[s].p_value);
  }
  EXPECT_EQ(y.direction, Direction::kStable);
  EXPECT_GE(y.overall_p_adjusted, y.overall.p_value);
}

TEST(MultiWaveTrendTest, BatteryValidatesLabelAlignmentAcrossEveryWave) {
  const std::vector<double> years = {2011.0, 2017.0, 2024.0};
  const std::vector<std::vector<data::OptionShare>> mismatched = {
      {share_of("x", 10, 100), share_of("y", 30, 100)},
      {share_of("x", 150, 300), share_of("y", 92, 300)},
      {share_of("y", 180, 600), share_of("x", 540, 600)},  // shuffled
  };
  EXPECT_THROW(multi_wave_option_battery(years, mismatched), rcr::Error);
  EXPECT_THROW(multi_wave_option_battery({2011.0, 2017.0}, mismatched),
               rcr::Error);  // years/waves size mismatch
}

TEST(DirectionLabelTest, Labels) {
  EXPECT_STREQ(direction_label(Direction::kIncrease), "increase");
  EXPECT_STREQ(direction_label(Direction::kDecrease), "decrease");
  EXPECT_STREQ(direction_label(Direction::kStable), "stable");
}

}  // namespace
}  // namespace rcr::trend
