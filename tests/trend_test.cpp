#include <gtest/gtest.h>

#include <cmath>

#include "trend/trend.hpp"
#include "util/error.hpp"

namespace rcr::trend {
namespace {

// Builds a wave with `hits` of `n` rows selecting option "x" of column "m",
// and the matching single-choice column "c" set to "yes"/"no".
data::Table make_wave(std::size_t hits, std::size_t n) {
  data::Table t;
  auto& m = t.add_multiselect("m", {"x", "y"});
  auto& c = t.add_categorical("c", {"yes", "no"});
  for (std::size_t i = 0; i < n; ++i) {
    const bool hit = i < hits;
    m.push_mask(hit ? 0b01 : 0b10);
    c.push(hit ? "yes" : "no");
  }
  return t;
}

TEST(CompareOptionTest, CountsAndDirection) {
  const auto w1 = make_wave(10, 100);   // 10%
  const auto w2 = make_wave(300, 600);  // 50%
  auto t = compare_option(w1, w2, "m", "x");
  EXPECT_DOUBLE_EQ(t.count1, 10.0);
  EXPECT_DOUBLE_EQ(t.n1, 100.0);
  EXPECT_DOUBLE_EQ(t.count2, 300.0);
  EXPECT_NEAR(t.share1.estimate, 0.1, 1e-12);
  EXPECT_NEAR(t.share2.estimate, 0.5, 1e-12);
  EXPECT_GT(t.test.diff, 0.0);  // wave2 minus wave1
  EXPECT_LT(t.test.p_value, 1e-6);
  EXPECT_GT(t.odds_ratio, 1.0);

  std::vector<ShareTrend> battery = {t};
  adjust_and_classify(battery);
  EXPECT_EQ(battery[0].direction, Direction::kIncrease);
}

TEST(CompareOptionTest, MissingRowsExcluded) {
  auto w1 = make_wave(5, 10);
  w1.multiselect("m").push_missing();
  w1.categorical("c").push_missing();
  const auto w2 = make_wave(5, 10);
  const auto t = compare_option(w1, w2, "m", "x");
  EXPECT_DOUBLE_EQ(t.n1, 10.0);  // the missing row does not count
}

TEST(CompareCategoryTest, Works) {
  const auto w1 = make_wave(20, 100);
  const auto w2 = make_wave(20, 100);
  const auto t = compare_category(w1, w2, "c", "yes");
  EXPECT_NEAR(t.share1.estimate, 0.2, 1e-12);
  EXPECT_NEAR(t.share2.estimate, 0.2, 1e-12);
  EXPECT_NEAR(t.test.p_value, 1.0, 1e-9);
  std::vector<ShareTrend> battery = {t};
  adjust_and_classify(battery);
  EXPECT_EQ(battery[0].direction, Direction::kStable);
}

TEST(ComparePredicateTest, NulloptExcludes) {
  const auto w1 = make_wave(4, 10);
  const auto w2 = make_wave(6, 10);
  const auto t = compare_predicate(
      w1, w2, "custom",
      [](const data::Table& table, std::size_t i) -> std::optional<bool> {
        if (i % 2 == 1) return std::nullopt;  // half the rows abstain
        return table.categorical("c").code_at(i) == 0;
      });
  EXPECT_DOUBLE_EQ(t.n1, 5.0);
  EXPECT_DOUBLE_EQ(t.n2, 5.0);
}

TEST(CompareOptionTest, UnknownOptionThrows) {
  const auto w1 = make_wave(1, 10);
  EXPECT_THROW(compare_option(w1, w1, "m", "zzz"), rcr::Error);
}

TEST(OptionBatteryTest, CoversAllOptionsWithHolm) {
  const auto w1 = make_wave(10, 100);
  const auto w2 = make_wave(300, 600);
  const auto battery = option_battery(w1, w2, "m");
  ASSERT_EQ(battery.size(), 2u);
  // Holm-adjusted p >= raw p.
  for (const auto& t : battery) EXPECT_GE(t.p_adjusted, t.test.p_value);
  // "x" rose, "y" fell (complementary in this construction).
  EXPECT_EQ(battery[0].direction, Direction::kIncrease);
  EXPECT_EQ(battery[1].direction, Direction::kDecrease);
}

TEST(AdjustClassifyTest, BhIsNoMoreConservativeThanHolm) {
  const auto w1 = make_wave(10, 100);
  const auto w2 = make_wave(300, 600);
  std::vector<ShareTrend> holm = {
      compare_option(w1, w2, "m", "x"), compare_option(w1, w2, "m", "y"),
      compare_category(w1, w2, "c", "yes")};
  auto bh = holm;
  adjust_and_classify(holm, 0.05, Multiplicity::kHolm);
  adjust_and_classify(bh, 0.05, Multiplicity::kBenjaminiHochberg);
  for (std::size_t i = 0; i < holm.size(); ++i) {
    EXPECT_LE(bh[i].p_adjusted, holm[i].p_adjusted + 1e-12);
    EXPECT_GE(bh[i].p_adjusted, bh[i].test.p_value);
  }
}

TEST(AdjustClassifyTest, EmptyBatteryIsFine) {
  std::vector<ShareTrend> empty;
  EXPECT_NO_THROW(adjust_and_classify(empty));
}

TEST(AdoptionCurveTest, RisingAdoptionHasPositiveSlope) {
  const auto w1 = make_wave(10, 200);   // 5% in 2011
  const auto w2 = make_wave(240, 400);  // 60% in 2024
  const auto c = fit_adoption_curve(w1, 2011, w2, 2024, "m", "x");
  EXPECT_TRUE(c.converged);
  EXPECT_GT(c.slope_per_year, 0.0);
  // Fitted shares reproduce the observed ones (two points, two params).
  EXPECT_NEAR(c.share_2011, 0.05, 0.01);
  EXPECT_NEAR(c.share_2024, 0.60, 0.01);
  // Midpoint falls between the waves (5% -> 60% crosses 50% before 2024).
  EXPECT_GT(c.midpoint_year, 2011.0);
  EXPECT_LT(c.midpoint_year, 2024.0);
  EXPECT_NEAR(c.predict(c.midpoint_year), 0.5, 1e-6);
}

TEST(AdoptionCurveTest, DecliningAdoptionHasNegativeSlope) {
  const auto w1 = make_wave(150, 200);
  const auto w2 = make_wave(40, 400);
  const auto c = fit_adoption_curve(w1, 2011, w2, 2024, "m", "x");
  EXPECT_LT(c.slope_per_year, 0.0);
}

TEST(AdoptionCurveTest, RejectsUnorderedWaves) {
  const auto w = make_wave(5, 10);
  EXPECT_THROW(fit_adoption_curve(w, 2024, w, 2011, "m", "x"), rcr::Error);
}

TEST(DistributionShiftTest, DetectsShift) {
  const auto w1 = make_wave(90, 100);  // mostly "yes"
  const auto w2 = make_wave(10, 100);  // mostly "no"
  const auto r = distribution_shift_test(w1, w2, "c");
  EXPECT_LT(r.p_value, 1e-10);
  EXPECT_GT(r.cramers_v, 0.5);
}

TEST(DistributionShiftTest, NoShiftHighP) {
  const auto w1 = make_wave(50, 100);
  const auto w2 = make_wave(250, 500);
  const auto r = distribution_shift_test(w1, w2, "c");
  EXPECT_GT(r.p_value, 0.9);
}

TEST(DirectionLabelTest, Labels) {
  EXPECT_STREQ(direction_label(Direction::kIncrease), "increase");
  EXPECT_STREQ(direction_label(Direction::kDecrease), "decrease");
  EXPECT_STREQ(direction_label(Direction::kStable), "stable");
}

}  // namespace
}  // namespace rcr::trend
