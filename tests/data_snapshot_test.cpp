// Round-trip, corruption, and end-to-end tests for the binary columnar
// snapshot format (data/snapshot.hpp).
//
// The contracts under test:
//   * CSV -> Table -> snapshot -> mmap -> Table is bitwise: column bytes,
//     dictionary label order, frozen state, and query-engine fingerprints
//     all survive, for tables parsed at thread counts 0/1/2/8;
//   * a flipped byte in any region (header, page, dictionary, page index,
//     footer) raises InvalidInputError naming the region — never UB, never
//     a silently wrong table (CI runs this suite under ASan/UBSan/TSan);
//   * zero-copy and memcpy materialization are observationally identical,
//     and a borrowed table is a full Table (copy-on-write on mutation);
//   * the checksum algorithm matches the published XXH64 vectors, so files
//     are portable across builds.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/stream_study.hpp"
#include "core/study.hpp"
#include "data/csv.hpp"
#include "data/snapshot.hpp"
#include "data/table.hpp"
#include "parallel/thread_pool.hpp"
#include "query/engine.hpp"
#include "synth/generator.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"

namespace rcr::data {
namespace {

std::string to_csv(const Table& t) {
  std::ostringstream out;
  write_csv(out, t);
  return out.str();
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "rcr_snapshot_" + name;
}

// Mirrors data_csv_roundtrip_test.cpp: every escape shape write_csv can
// emit, all three column kinds, missing cells, the answered-none mask.
const std::vector<std::string>& gnarly_labels() {
  static const std::vector<std::string> labels = {
      "plain",     " lead",       "trail ",      " both ",
      "\ttabbed\t", "multi\nline", "cr\rreturn",  "crlf\r\nend",
      "com,ma",    "qu\"ote",     "\"quoted\"",  " \"mix\",\nall\r ",
      "-"};
  return labels;
}

Table make_gnarly_table() {
  const auto& labels = gnarly_labels();
  Table t;
  auto& cat = t.add_categorical("label", labels);
  auto& num = t.add_numeric("score");
  auto& multi =
      t.add_multiselect("opts", {"a", "b c", " padded ", "new\nline"});
  for (std::size_t i = 0; i < 3 * labels.size(); ++i) {
    if (i % 11 == 5)
      cat.push_missing();
    else
      cat.push(labels[i % labels.size()]);
    if (i % 7 == 3)
      num.push_missing();
    else
      num.push(0.125 * static_cast<double>(i) - 2.0);
    if (i % 9 == 4)
      multi.push_missing();
    else
      multi.push_mask(static_cast<std::uint64_t>(i % 16));
  }
  return t;
}

// Bitwise column-storage equality plus schema equality, stricter than the
// CSV-bytes comparison (it sees the raw doubles, codes, masks, and flags).
void expect_tables_bitwise_equal(const Table& a, const Table& b) {
  ASSERT_EQ(a.column_names(), b.column_names());
  ASSERT_EQ(a.row_count(), b.row_count());
  for (const auto& name : a.column_names()) {
    ASSERT_EQ(a.kind(name), b.kind(name)) << name;
    switch (a.kind(name)) {
      case ColumnKind::kNumeric:
        EXPECT_EQ(a.numeric(name).values(), b.numeric(name).values()) << name;
        break;
      case ColumnKind::kCategorical:
        EXPECT_EQ(a.categorical(name).categories(),
                  b.categorical(name).categories())
            << name;
        EXPECT_EQ(a.categorical(name).frozen(), b.categorical(name).frozen())
            << name;
        EXPECT_EQ(a.categorical(name).codes(), b.categorical(name).codes())
            << name;
        break;
      case ColumnKind::kMultiSelect:
        EXPECT_EQ(a.multiselect(name).options(), b.multiselect(name).options())
            << name;
        EXPECT_EQ(a.multiselect(name).masks(), b.multiselect(name).masks())
            << name;
        EXPECT_EQ(a.multiselect(name).missing_flags(),
                  b.multiselect(name).missing_flags())
            << name;
        break;
    }
  }
  EXPECT_EQ(to_csv(a), to_csv(b));
}

// T1–T6-shaped query fingerprint of the gnarly table: crosstab, option
// shares, numeric summary, group-answered — rendered to a string with full
// precision so any drifting bit shows up.
std::string query_fingerprint(const Table& t, parallel::ThreadPool* pool) {
  query::QueryEngine engine(t);
  const auto ct = engine.add_crosstab("label", "label");
  const auto ms = engine.add_crosstab_multiselect("label", "opts");
  const auto sh = engine.add_option_shares("opts");
  const auto cs = engine.add_category_shares("label");
  const auto ns = engine.add_numeric_summary("score");
  const auto ga = engine.add_group_answered("label", "opts");
  engine.run(pool);

  char buf[64];
  std::string out;
  const auto add = [&](double v) {
    std::snprintf(buf, sizeof buf, "%.17g;", v);
    out += buf;
  };
  const auto& xt = engine.crosstab(ct);
  for (std::size_t r = 0; r < xt.row_labels.size(); ++r)
    for (std::size_t c = 0; c < xt.col_labels.size(); ++c)
      add(xt.counts.at(r, c));
  const auto& mt = engine.crosstab(ms);
  for (std::size_t r = 0; r < mt.row_labels.size(); ++r)
    for (std::size_t c = 0; c < mt.col_labels.size(); ++c)
      add(mt.counts.at(r, c));
  for (const auto& s : engine.shares(sh)) {
    out += s.label + ":";
    add(s.count);
    add(s.total);
  }
  for (const auto& s : engine.shares(cs)) {
    out += s.label + ":";
    add(s.count);
    add(s.total);
  }
  const auto& sum = engine.numeric(ns);
  add(sum.count);
  add(sum.sum);
  add(sum.min);
  add(sum.max);
  for (const double v : engine.group_answered(ga)) add(v);
  return out;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::uint64_t read_u64(const std::string& bytes, std::size_t offset) {
  std::uint64_t v;
  std::memcpy(&v, bytes.data() + offset, sizeof v);
  return v;
}

// --- Checksum reference vectors ----------------------------------------------

TEST(XxHash64, MatchesPublishedReferenceVectors) {
  // Published XXH64 vectors (seed 0): the empty string, short tails through
  // the 1/4-byte finishers, and a >32-byte input through the 4-lane loop.
  EXPECT_EQ(xxhash64("", 0), 0xEF46DB3751D8E999ULL);
  EXPECT_EQ(xxhash64("a", 1), 0xD24EC4F1A98C6E5BULL);
  EXPECT_EQ(xxhash64("abc", 3), 0x44BC2CF5AD770999ULL);
  const std::string fox = "The quick brown fox jumps over the lazy dog";
  EXPECT_EQ(xxhash64(fox.data(), fox.size()), 0x0B242D361FDA71BCULL);
}

TEST(XxHash64, SeedAndLengthChangeTheHash) {
  const std::string s = "snapshot";
  EXPECT_NE(xxhash64(s.data(), s.size(), 0), xxhash64(s.data(), s.size(), 1));
  EXPECT_NE(xxhash64(s.data(), s.size()), xxhash64(s.data(), s.size() - 1));
}

// --- Round trips -------------------------------------------------------------

TEST(Snapshot, GnarlyTableRoundTripsBitwise) {
  const Table t = make_gnarly_table();
  const std::string path = temp_path("gnarly.rcr");
  write_snapshot(t, path);
  const Table back = read_snapshot(path);
  expect_tables_bitwise_equal(t, back);
  std::remove(path.c_str());
}

TEST(Snapshot, CsvParsedTableRoundTripsAcrossThreadCounts) {
  // CSV -> parallel read (threads 0/1/2/8) -> snapshot -> mmap -> Table:
  // every path lands on the same bytes as the serial CSV read.
  const Table t = make_gnarly_table();
  Table big = t.clone_empty();
  for (int rep = 0; rep < 40; ++rep) big.append_rows(t);
  const std::string text = to_csv(big);
  CsvOptions options;
  options.parallel_shard_bytes = 512;  // force many shards
  std::istringstream serial_in(text);
  const Table serial = read_csv(serial_in, t);
  for (const std::size_t threads : {0u, 1u, 2u, 8u}) {
    std::unique_ptr<parallel::ThreadPool> pool;
    if (threads > 0) pool = std::make_unique<parallel::ThreadPool>(threads);
    std::istringstream in(text);
    const Table parsed = read_csv_parallel(in, t, pool.get(), options);
    const std::string path =
        temp_path("threads" + std::to_string(threads) + ".rcr");
    write_snapshot(parsed, path);
    const Table back = read_snapshot(path);
    expect_tables_bitwise_equal(serial, back);
    EXPECT_EQ(query_fingerprint(serial, nullptr),
              query_fingerprint(back, pool.get()))
        << "threads=" << threads;
    std::remove(path.c_str());
  }
}

TEST(Snapshot, MultiPageAndCopyModesMatchZeroCopy) {
  const Table t = make_gnarly_table();
  const std::string single = temp_path("single.rcr");
  const std::string paged = temp_path("paged.rcr");
  write_snapshot(t, single);
  SnapshotWriteOptions paged_opts;
  paged_opts.page_rows = 7;  // non-divisor of the row count
  write_snapshot(t, paged, paged_opts);

  const Table zero_copy = read_snapshot(single);
  EXPECT_TRUE(zero_copy.numeric("score").values().is_borrowed());

  SnapshotReadOptions copy_opts;
  copy_opts.zero_copy = false;
  const Table copied = read_snapshot(single, copy_opts);
  EXPECT_FALSE(copied.numeric("score").values().is_borrowed());

  const Table multi_page = read_snapshot(paged);
  EXPECT_FALSE(multi_page.numeric("score").values().is_borrowed());

  expect_tables_bitwise_equal(t, zero_copy);
  expect_tables_bitwise_equal(t, copied);
  expect_tables_bitwise_equal(t, multi_page);
  std::remove(single.c_str());
  std::remove(paged.c_str());
}

TEST(Snapshot, BorrowedTableIsAFullTableViaCopyOnWrite) {
  const Table t = make_gnarly_table();
  const std::string path = temp_path("cow.rcr");
  write_snapshot(t, path);
  Table borrowed = read_snapshot(path);
  ASSERT_TRUE(borrowed.numeric("score").values().is_borrowed());

  // Mutation materializes a private copy; the sibling read is untouched.
  borrowed.numeric("score").set(0, 123.5);
  EXPECT_FALSE(borrowed.numeric("score").values().is_borrowed());
  EXPECT_EQ(borrowed.numeric("score").at(0), 123.5);
  const Table again = read_snapshot(path);
  expect_tables_bitwise_equal(t, again);

  // The mapping stays pinned by the borrowing columns even after the file
  // is deleted — reads must keep working (POSIX keeps the pages alive).
  std::remove(path.c_str());
  EXPECT_EQ(again.row_count(), t.row_count());
  EXPECT_EQ(to_csv(again), to_csv(t));
}

TEST(Snapshot, UnfrozenDictionaryReloadsWithIdenticalInterningOrder) {
  Table t;
  auto& cat = t.add_categorical("c");  // open dictionary
  for (const char* label : {"delta", "alpha", "echo", "alpha", "bravo"})
    cat.push(label);
  ASSERT_FALSE(cat.frozen());
  const std::string path = temp_path("open_dict.rcr");
  write_snapshot(t, path);

  Table back = read_snapshot(path);
  auto& rcat = back.categorical("c");
  EXPECT_FALSE(rcat.frozen());
  EXPECT_EQ(rcat.categories(),
            (std::vector<std::string>{"delta", "alpha", "echo", "bravo"}));
  EXPECT_EQ(rcat.codes(), t.categorical("c").codes());
  // Continued ingest extends the dictionary exactly as the original would.
  rcat.push("foxtrot");
  EXPECT_EQ(rcat.categories().back(), "foxtrot");
  EXPECT_EQ(rcat.code_at(rcat.size() - 1), 4);
  std::remove(path.c_str());
}

TEST(Snapshot, FrozenStateSurvivesRoundTrip) {
  Table t;
  auto& cat = t.add_categorical("c", {"x", "y"});  // ctor freezes
  cat.push("x");
  ASSERT_TRUE(cat.frozen());
  const std::string path = temp_path("frozen.rcr");
  write_snapshot(t, path);
  Table back = read_snapshot(path);
  EXPECT_TRUE(back.categorical("c").frozen());
  EXPECT_THROW(back.categorical("c").push("unknown"), rcr::Error);
  std::remove(path.c_str());
}

TEST(Snapshot, EmptyTableRoundTrips) {
  Table t;
  t.add_numeric("n");
  t.add_categorical("c", {"a", "b"});
  t.add_multiselect("m", {"o1", "o2"});
  const std::string path = temp_path("empty.rcr");
  write_snapshot(t, path);
  const Table back = read_snapshot(path);
  EXPECT_EQ(back.row_count(), 0u);
  expect_tables_bitwise_equal(t, back);
  std::remove(path.c_str());
}

TEST(Snapshot, StreamingWriterMergesShardDictionariesLabelwise) {
  // Two blocks interned independently (a parallel-shard shape): the writer
  // re-interns label-wise, so the reload matches a serial labelwise merge.
  Table shard_a;
  auto& ca = shard_a.add_categorical("c");
  for (const char* l : {"x", "y", "x"}) ca.push(l);
  Table shard_b;
  auto& cb = shard_b.add_categorical("c");
  for (const char* l : {"y", "z", "x"}) cb.push(l);

  Table schema;
  schema.add_categorical("c");
  const std::string path = temp_path("shards.rcr");
  {
    SnapshotWriter writer(schema, path);
    writer.append(shard_a);
    writer.append(shard_b);
    writer.finish();
    EXPECT_EQ(writer.rows_written(), 6u);
  }
  Table serial = schema.clone_empty();
  serial.append_rows_labelwise(shard_a);
  serial.append_rows_labelwise(shard_b);

  const Table back = read_snapshot(path);
  expect_tables_bitwise_equal(serial, back);
  EXPECT_EQ(back.categorical("c").categories(),
            (std::vector<std::string>{"x", "y", "z"}));
  std::remove(path.c_str());
}

// --- Corruption --------------------------------------------------------------

// Flips one byte at `offset` and expects read_snapshot to fail with an
// error message naming `region`.
void expect_flip_fails_naming(const std::string& path, std::size_t offset,
                              const std::string& region) {
  std::string bytes = read_file(path);
  ASSERT_LT(offset, bytes.size());
  const std::string mutated_path = path + ".corrupt";
  std::string mutated = bytes;
  mutated[offset] = static_cast<char>(mutated[offset] ^ 0x40);
  write_file(mutated_path, mutated);
  try {
    (void)read_snapshot(mutated_path);
    FAIL() << "accepted a flipped byte at offset " << offset;
  } catch (const rcr::InvalidInputError& e) {
    EXPECT_NE(std::string(e.what()).find(region), std::string::npos)
        << "offset " << offset << ": " << e.what();
  }
  std::remove(mutated_path.c_str());
}

TEST(SnapshotCorruption, OneFlippedBytePerRegionFailsLoudlyNamingTheRegion) {
  const Table t = make_gnarly_table();
  const std::string path = temp_path("corrupt.rcr");
  write_snapshot(t, path);
  const std::string bytes = read_file(path);
  ASSERT_GE(bytes.size(), 96u);

  // Region offsets from the on-disk layout (DESIGN.md): header at 0, first
  // page at 64, footer located by the trailer's first field.
  const std::size_t footer_offset = read_u64(bytes, bytes.size() - 32);
  const std::size_t dict_bytes = read_u64(bytes, footer_offset);
  const std::size_t dict_payload = footer_offset + 8;
  const std::size_t index_payload = dict_payload + dict_bytes + 8 + 8;

  expect_flip_fails_naming(path, 9, "header");       // version field
  expect_flip_fails_naming(path, 17, "header");      // row count
  expect_flip_fails_naming(path, 64, "page");        // first page payload
  expect_flip_fails_naming(path, footer_offset - 1, "page");  // last payload
  expect_flip_fails_naming(path, dict_payload + 1, "dictionary");
  expect_flip_fails_naming(path, index_payload + 1, "page index");
  expect_flip_fails_naming(path, bytes.size() - 4, "footer");   // magic
  expect_flip_fails_naming(path, bytes.size() - 32, "footer");  // offset
  std::remove(path.c_str());
}

TEST(SnapshotCorruption, TruncationAndGarbageFailLoudly) {
  const Table t = make_gnarly_table();
  const std::string path = temp_path("trunc.rcr");
  write_snapshot(t, path);
  const std::string bytes = read_file(path);

  const std::string trunc = temp_path("trunc_cut.rcr");
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{17}, std::size_t{64},
        bytes.size() - 33, bytes.size() - 1}) {
    write_file(trunc, bytes.substr(0, keep));
    EXPECT_THROW((void)read_snapshot(trunc), rcr::InvalidInputError)
        << "kept " << keep << " bytes";
  }
  write_file(trunc, "this is not a snapshot at all");
  EXPECT_THROW((void)read_snapshot(trunc), rcr::InvalidInputError);
  std::remove(trunc.c_str());
  std::remove(path.c_str());

  EXPECT_THROW((void)read_snapshot(temp_path("no_such_file.rcr")),
               rcr::InvalidInputError);
}

TEST(SnapshotCorruption, ForgedCodeRangeIsCaughtByVerification) {
  // Flip a code byte *and* forge the page checksum so only the range check
  // stands between the file and out-of-bounds dictionary indexing.
  Table t;
  auto& cat = t.add_categorical("c", {"a", "b"});
  for (int i = 0; i < 8; ++i) cat.push_code(i % 2);
  const std::string path = temp_path("forged.rcr");
  write_snapshot(t, path);
  std::string bytes = read_file(path);

  // First page holds the eight i32 codes at offset 64; overwrite one with
  // a huge code, then rewrite the page's index-entry hash to match.
  const std::uint64_t footer_offset = read_u64(bytes, bytes.size() - 32);
  const std::uint64_t dict_bytes = read_u64(bytes, footer_offset);
  const std::size_t index_payload =
      static_cast<std::size_t>(footer_offset + 8 + dict_bytes + 8 + 8);
  const std::int32_t evil = 1 << 20;
  std::memcpy(bytes.data() + 64, &evil, sizeof evil);
  const std::uint64_t forged = xxhash64(bytes.data() + 64, 8 * 4);
  // Index entry: column(4) kind(4) first_row(8) rows(8) offset(8) bytes(8)
  // then the hash — 40 bytes in.
  std::memcpy(bytes.data() + index_payload + 40, &forged, sizeof forged);
  // Reseal the index section hash so validation reaches the range check.
  const std::uint64_t index_bytes =
      read_u64(bytes, static_cast<std::size_t>(footer_offset + 8 +
                                               dict_bytes + 8));
  const std::uint64_t index_hash =
      xxhash64(bytes.data() + index_payload, index_bytes);
  std::memcpy(bytes.data() + index_payload + index_bytes, &index_hash,
              sizeof index_hash);
  write_file(path, bytes);

  try {
    (void)read_snapshot(path);
    FAIL() << "accepted an out-of-range categorical code";
  } catch (const rcr::InvalidInputError& e) {
    EXPECT_NE(std::string(e.what()).find("out of dictionary range"),
              std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

// --- End-to-end through core -------------------------------------------------

TEST(SnapshotCore, StreamStudyMatchesCsvBackedRunExactly) {
  // Same wave through both ingest formats: the sketch reports must be
  // byte-identical, because the snapshot slices mirror the CSV blocks.
  synth::GeneratorConfig gen;
  gen.wave = synth::Wave::k2024;
  gen.respondents = 500;
  gen.seed = 99;
  const Table wave = synth::generate_wave(gen);

  const std::string csv_path = temp_path("stream.csv");
  const std::string snap_path = temp_path("stream.rcr");
  {
    std::ofstream out(csv_path, std::ios::binary);
    write_csv(out, wave);
  }
  write_snapshot(wave, snap_path);

  core::StreamStudyConfig config;
  config.block_rows = 64;
  config.csv_path = csv_path;
  const auto csv_report =
      core::render_stream_report(core::run_stream_study(config));
  config.csv_path.clear();
  config.snapshot_path = snap_path;
  const auto snap_report =
      core::render_stream_report(core::run_stream_study(config));
  EXPECT_EQ(csv_report, snap_report);
  std::remove(csv_path.c_str());
  std::remove(snap_path.c_str());
}

TEST(SnapshotCore, SnapshotBackedStudyReproducesSynthesizedWavesBitwise) {
  core::StudyConfig small;
  small.n_2011 = 40;
  small.n_2024 = 60;
  const core::Study generated(small);

  const std::string p2011 = temp_path("wave2011.rcr");
  const std::string p2024 = temp_path("wave2024.rcr");
  write_snapshot(generated.wave2011(), p2011);
  write_snapshot(generated.wave2024(), p2024);

  core::StudyConfig from_disk = small;
  from_disk.snapshot_2011 = p2011;
  from_disk.snapshot_2024 = p2024;
  const core::Study loaded(from_disk);
  expect_tables_bitwise_equal(generated.wave2011(), loaded.wave2011());
  expect_tables_bitwise_equal(generated.wave2024(), loaded.wave2024());
  std::remove(p2011.c_str());
  std::remove(p2024.c_str());
}

// --- CSV serial fallback -----------------------------------------------------

TEST(CsvSerialFallback, SmallInputsFallBackAndStayByteIdentical) {
  // Below the crossover the parallel entry points parse serially; the
  // result must still be byte-identical to both the serial reader and the
  // pinned-parallel read of the same bytes.
  const Table t = make_gnarly_table();
  const std::string text = to_csv(t);  // well under the fallback threshold
  std::istringstream serial_in(text);
  const std::string serial = to_csv(read_csv(serial_in, t));

  parallel::ThreadPool pool(4);
  std::istringstream fallback_in(text);
  const Table fallback = read_csv_parallel(fallback_in, t, &pool);
  EXPECT_EQ(to_csv(fallback), serial);

  CsvOptions pinned;
  pinned.parallel_shard_bytes = 256;  // explicit grain pins sharding on
  std::istringstream pinned_in(text);
  const Table sharded = read_csv_parallel(pinned_in, t, &pool, pinned);
  EXPECT_EQ(to_csv(sharded), serial);
}

}  // namespace
}  // namespace rcr::data
