// Integration tests: the full pipeline from synthetic waves through every
// registered experiment.
#include <gtest/gtest.h>

#include "core/rcr.hpp"

namespace rcr::core {
namespace {

// One shared small study keeps the suite fast; experiments only read it.
const Study& small_study() {
  static const Study study([] {
    StudyConfig c;
    c.n_2011 = 80;
    c.n_2024 = 200;
    c.seed = 21;
    return c;
  }());
  return study;
}

TEST(StudyTest, WavesHaveConfiguredSizes) {
  const auto& s = small_study();
  EXPECT_EQ(s.wave2011().row_count(), 80u);
  EXPECT_EQ(s.wave2024().row_count(), 200u);
  EXPECT_NO_THROW(s.wave2011().validate_rectangular());
}

TEST(StudyTest, WeightsConvergeAndAreCached) {
  const auto& s = small_study();
  const auto& w1 = s.weights2024();
  EXPECT_TRUE(w1.converged);
  EXPECT_EQ(w1.weights.size(), s.wave2024().row_count());
  const auto& w2 = s.weights2024();
  EXPECT_EQ(&w1, &w2);  // cached
}

TEST(StudyTest, DeterministicAcrossInstances) {
  StudyConfig c;
  c.n_2011 = 30;
  c.n_2024 = 40;
  c.seed = 5;
  const Study a(c), b(c);
  EXPECT_EQ(a.wave2024().multiselect(synth::col::kLanguages).mask_at(7),
            b.wave2024().multiselect(synth::col::kLanguages).mask_at(7));
}

TEST(ParallelRungTest, LadderOrdering) {
  const auto& t = small_study().wave2024();
  const auto& res = t.multiselect(synth::col::kParallelResources);
  for (std::size_t i = 0; i < t.row_count(); ++i) {
    if (res.is_missing(i)) continue;
    const ParallelRung rung = parallel_rung(t, i);
    if (res.mask_at(i) == 0) {
      EXPECT_EQ(rung, ParallelRung::kSerialOnly);
      EXPECT_FALSE(is_parallel_user(t, i));
    } else {
      EXPECT_NE(rung, ParallelRung::kSerialOnly);
      EXPECT_TRUE(is_parallel_user(t, i));
    }
  }
}

class ExperimentTest : public ::testing::TestWithParam<const char*> {
 protected:
  static report::ExperimentRegistry& registry() {
    static report::ExperimentRegistry reg = [] {
      report::ExperimentRegistry r;
      register_all_experiments(r, small_study());
      return r;
    }();
    return reg;
  }
};

TEST_P(ExperimentTest, RunsAndProducesDeterministicArtifact) {
  const std::string id = GetParam();
  ASSERT_TRUE(registry().has(id));
  const std::string first = registry().run(id);
  EXPECT_GT(first.size(), 100u) << "suspiciously small artifact";
  EXPECT_NE(first.find("== " + id), std::string::npos);
  if (id == "F5") return;  // wall-clock calibration varies run to run
  const std::string second = registry().run(id);
  EXPECT_EQ(first, second);
}

INSTANTIATE_TEST_SUITE_P(AllExperiments, ExperimentTest,
                         ::testing::Values("T1", "T2", "T3", "T4", "T5", "T6",
                                           "T7", "T8", "F1", "F2", "F3", "F4",
                                           "F6", "F7", "F8", "F9", "F10"));

TEST(ExperimentTest, F5RunsKernelsAndVerifies) {
  // F5 measures wall-clock, so only sanity-check its structure.
  report::ExperimentRegistry reg;
  register_all_experiments(reg, small_study());
  const std::string out = reg.run("F5");
  EXPECT_NE(out.find("heat-stencil"), std::string::npos);
  EXPECT_NE(out.find("spmv"), std::string::npos);
  EXPECT_NE(out.find("Amdahl"), std::string::npos);
}

TEST(ExperimentTest, RegistryHasAllExperiments) {
  report::ExperimentRegistry reg;
  register_all_experiments(reg, small_study());
  EXPECT_EQ(reg.all().size(), 18u);
}

TEST(ExperimentTest, HeadlineTrendsPointTheRightWay) {
  // The substance check: the reconstructed study reproduces the known
  // directional findings even at this small n.
  const auto& s = small_study();
  const auto py = trend::compare_option(s.wave2011(), s.wave2024(),
                                        synth::col::kLanguages, "Python");
  EXPECT_GT(py.share2.estimate, py.share1.estimate);
  const auto vcs =
      trend::compare_option(s.wave2011(), s.wave2024(),
                            synth::col::kSePractices, "Version control");
  EXPECT_GT(vcs.share2.estimate, vcs.share1.estimate);
  const auto gpu =
      trend::compare_option(s.wave2011(), s.wave2024(),
                            synth::col::kParallelResources, "GPU");
  EXPECT_GT(gpu.share2.estimate, gpu.share1.estimate);
}

}  // namespace
}  // namespace rcr::core
