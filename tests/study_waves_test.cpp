// N-wave Study surface: the legacy two-wave configuration must survive the
// generalization byte-for-byte (same generator streams, same fused
// aggregates, across every pool size), and 3+-wave studies must run end to
// end with the longitudinal L-series registered.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/experiments.hpp"
#include "core/study.hpp"
#include "data/csv.hpp"
#include "parallel/thread_pool.hpp"
#include "report/experiment.hpp"
#include "synth/calibration.hpp"
#include "synth/domain.hpp"
#include "trend/trend.hpp"

namespace rcr::core {
namespace {

std::string csv_of(const data::Table& t) {
  std::ostringstream out;
  data::write_csv(out, t);
  return out.str();
}

void expect_same_shares(const std::vector<data::OptionShare>& a,
                        const std::vector<data::OptionShare>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].label, b[i].label);
    EXPECT_DOUBLE_EQ(a[i].count, b[i].count);
    EXPECT_DOUBLE_EQ(a[i].total, b[i].total);
    EXPECT_DOUBLE_EQ(a[i].share.estimate, b[i].share.estimate);
    EXPECT_DOUBLE_EQ(a[i].share.lo, b[i].share.lo);
    EXPECT_DOUBLE_EQ(a[i].share.hi, b[i].share.hi);
  }
}

TEST(StudyWavesTest, ExplicitTwoWaveSpecsMatchLegacyConfigByteForByte) {
  StudyConfig legacy;
  legacy.n_2011 = 60;
  legacy.n_2024 = 150;
  legacy.seed = 11;

  StudyConfig explicit_cfg;
  explicit_cfg.seed = 11;
  explicit_cfg.waves = {{synth::kYear2011, 60, "", false, 0},
                        {synth::kYear2024, 150, "", true, 0}};

  const Study a(legacy), b(explicit_cfg);
  ASSERT_EQ(a.wave_count(), 2u);
  ASSERT_EQ(b.wave_count(), 2u);
  EXPECT_EQ(csv_of(a.wave(0)), csv_of(b.wave(0)));
  EXPECT_EQ(csv_of(a.wave(1)), csv_of(b.wave(1)));
  // The shims are the same objects as the indexed surface.
  EXPECT_EQ(&a.wave2011(), &a.wave(0));
  EXPECT_EQ(&a.wave2024(), &a.wave(1));
  EXPECT_EQ(&a.aggregates2011(), &a.aggregates(0));
  EXPECT_EQ(&a.aggregates2024(), &a.aggregates(1));
  expect_same_shares(a.aggregates(1).languages, b.aggregates(1).languages);
  expect_same_shares(a.aggregates(0).se_practices,
                     b.aggregates(0).se_practices);
}

TEST(StudyWavesTest, WavesAndAggregatesArePoolSizeInvariant) {
  StudyConfig serial_cfg;
  serial_cfg.n_2011 = 60;
  serial_cfg.n_2024 = 150;
  serial_cfg.seed = 13;
  const Study serial(serial_cfg);
  const std::string w0 = csv_of(serial.wave(0));
  const std::string w1 = csv_of(serial.wave(1));

  for (const std::size_t threads : {1u, 2u, 8u}) {
    parallel::ThreadPool pool(threads);
    StudyConfig cfg = serial_cfg;
    cfg.pool = &pool;
    const Study pooled(cfg);
    EXPECT_EQ(csv_of(pooled.wave(0)), w0) << threads << " threads";
    EXPECT_EQ(csv_of(pooled.wave(1)), w1) << threads << " threads";
    expect_same_shares(pooled.aggregates(0).languages,
                       serial.aggregates(0).languages);
    expect_same_shares(pooled.aggregates(1).parallel_resources,
                       serial.aggregates(1).parallel_resources);
  }
}

Study make_three_wave_study() {
  StudyConfig cfg;
  cfg.seed = 17;
  cfg.waves = {{synth::kYear2011, 50, "", false, 0},
               {2018.0, 90, "", false, 0},
               {synth::kYear2024, 140, "", true, 0}};
  return Study(cfg);
}

TEST(StudyWavesTest, ThreeWaveStudyRunsEndToEnd) {
  const Study study = make_three_wave_study();
  ASSERT_EQ(study.wave_count(), 3u);
  EXPECT_DOUBLE_EQ(study.wave_year(0), synth::kYear2011);
  EXPECT_DOUBLE_EQ(study.wave_year(1), 2018.0);
  EXPECT_DOUBLE_EQ(study.wave_year(2), synth::kYear2024);
  EXPECT_EQ(study.wave(1).row_count(), 90u);
  EXPECT_NO_THROW(study.wave(1).validate_rectangular());
  // Every wave draws an independent stream: salts all differ.
  EXPECT_NE(study.wave_spec(1).seed_salt, study.wave_spec(0).seed_salt);
  EXPECT_NE(study.wave_spec(2).seed_salt, study.wave_spec(1).seed_salt);
  // Raking works against the interpolated mid-wave margins too.
  EXPECT_TRUE(study.weights(1).converged);
  EXPECT_EQ(study.weights(1).weights.size(), 90u);
}

TEST(StudyWavesTest, MidWaveSharesTrackTheSecularDrift) {
  const Study study = make_three_wave_study();
  std::vector<std::vector<data::OptionShare>> lang_waves;
  std::vector<double> years;
  for (std::size_t w = 0; w < study.wave_count(); ++w) {
    years.push_back(study.wave_year(w));
    lang_waves.push_back(study.aggregates(w).languages);
  }
  // One Holm-adjusted battery per indicator family across all three waves.
  const auto battery = trend::multi_wave_option_battery(years, lang_waves);
  ASSERT_EQ(battery.size(), lang_waves[0].size());
  for (const auto& tr : battery) {
    ASSERT_EQ(tr.shares.size(), 3u);
    ASSERT_EQ(tr.segments.size(), 2u);
    ASSERT_EQ(tr.segment_p_adjusted.size(), 2u);
    EXPECT_GE(tr.overall_p_adjusted, tr.overall.p_value);
    if (tr.indicator == "Python") {
      // The anchors pin Python rising; the interpolated 2018 wave sits
      // between them and the overall trend is a significant increase.
      EXPECT_GT(tr.share(2), tr.share(0));
      EXPECT_EQ(tr.direction, trend::Direction::kIncrease);
    }
  }
}

TEST(StudyWavesTest, RegistryAddsLSeriesOnlyForThreePlusWaves) {
  StudyConfig two;
  two.n_2011 = 50;
  two.n_2024 = 120;
  two.seed = 19;
  const Study two_wave(two);
  report::ExperimentRegistry two_reg;
  register_all_experiments(two_reg, two_wave);
  EXPECT_EQ(two_reg.all().size(), 18u);
  EXPECT_FALSE(two_reg.has("L1"));

  const Study three_wave = make_three_wave_study();
  report::ExperimentRegistry three_reg;
  register_all_experiments(three_reg, three_wave);
  EXPECT_EQ(three_reg.all().size(), 19u);
  ASSERT_TRUE(three_reg.has("L1"));
  const std::string out = three_reg.run("L1");
  EXPECT_NE(out.find("Languages"), std::string::npos);
  EXPECT_NE(out.find("SE practices"), std::string::npos);
  EXPECT_NE(out.find("Parallel resources"), std::string::npos);
  // Deterministic artifact, like every other registered experiment.
  EXPECT_EQ(out, three_reg.run("L1"));
}

}  // namespace
}  // namespace rcr::core
