#include <gtest/gtest.h>

#include <sstream>

#include "data/crosstab.hpp"
#include "data/csv.hpp"
#include "data/table.hpp"
#include "util/error.hpp"

namespace rcr::data {
namespace {

Table make_sample_table() {
  Table t;
  auto& field = t.add_categorical("field", {"phys", "bio"});
  auto& score = t.add_numeric("score");
  auto& langs = t.add_multiselect("langs", {"py", "cpp", "r"});
  field.push("phys");  score.push(1.0);  langs.push_labels({"py", "cpp"});
  field.push("bio");   score.push(2.0);  langs.push_labels({"py", "r"});
  field.push("phys");  score.push(3.0);  langs.push_labels({"cpp"});
  field.push("bio");   score.push_missing(); langs.push_missing();
  return t;
}

// --- columns -------------------------------------------------------------------

TEST(NumericColumnTest, MissingHandling) {
  NumericColumn c;
  c.push(1.0);
  c.push_missing();
  c.push(3.0);
  EXPECT_EQ(c.size(), 3u);
  EXPECT_TRUE(NumericColumn::is_missing(c.at(1)));
  EXPECT_EQ(c.present_values(), (std::vector<double>{1.0, 3.0}));
}

TEST(CategoricalColumnTest, InternAndFrozen) {
  CategoricalColumn open;
  open.push("a");
  open.push("b");
  open.push("a");
  EXPECT_EQ(open.category_count(), 2u);
  EXPECT_EQ(open.code_at(2), 0);
  EXPECT_EQ(open.counts(), (std::vector<double>{2.0, 1.0}));

  CategoricalColumn frozen({"x", "y"});
  frozen.push("y");
  EXPECT_THROW(frozen.push("z"), rcr::Error);
  EXPECT_EQ(frozen.find_code("zzz"), kMissingCode);
}

TEST(CategoricalColumnTest, PushCodeValidation) {
  CategoricalColumn c({"a", "b"});
  c.push_code(1);
  c.push_code(kMissingCode);
  EXPECT_TRUE(c.is_missing(1));
  EXPECT_THROW(c.push_code(2), rcr::Error);
  EXPECT_THROW(c.push_code(-5), rcr::Error);
}

TEST(CategoricalColumnTest, LabelAtMissingThrows) {
  CategoricalColumn c({"a"});
  c.push_missing();
  EXPECT_THROW(c.label_at(0), rcr::Error);
}

TEST(MultiSelectColumnTest, MasksAndCounts) {
  MultiSelectColumn c({"a", "b", "c"});
  c.push_labels({"a", "c"});
  c.push_labels({});
  c.push_missing();
  c.push_mask(0b010);
  EXPECT_EQ(c.size(), 4u);
  EXPECT_TRUE(c.has(0, 0));
  EXPECT_FALSE(c.has(0, 1));
  EXPECT_TRUE(c.has(0, 2));
  EXPECT_FALSE(c.has(2, 0));  // missing row selects nothing
  EXPECT_EQ(c.selection_count(0), 2u);
  EXPECT_EQ(c.selection_count(2), 0u);
  EXPECT_EQ(c.option_counts(), (std::vector<double>{1.0, 1.0, 1.0}));
}

TEST(MultiSelectColumnTest, RejectsUnknownAndOutOfRange) {
  MultiSelectColumn c({"a", "b"});
  EXPECT_THROW(c.push_labels({"nope"}), rcr::Error);
  EXPECT_THROW(c.push_mask(0b100), rcr::Error);
}

// --- table ---------------------------------------------------------------------

TEST(TableTest, SchemaAndAccess) {
  const Table t = make_sample_table();
  EXPECT_EQ(t.column_count(), 3u);
  EXPECT_EQ(t.row_count(), 4u);
  EXPECT_TRUE(t.has_column("score"));
  EXPECT_FALSE(t.has_column("nope"));
  EXPECT_EQ(t.kind("field"), ColumnKind::kCategorical);
  EXPECT_EQ(t.kind("score"), ColumnKind::kNumeric);
  EXPECT_EQ(t.kind("langs"), ColumnKind::kMultiSelect);
  EXPECT_THROW(t.numeric("field"), rcr::Error);
  EXPECT_THROW(t.categorical("nope"), rcr::Error);
  EXPECT_NO_THROW(t.validate_rectangular());
}

TEST(TableTest, DuplicateColumnRejected) {
  Table t;
  t.add_numeric("x");
  EXPECT_THROW(t.add_numeric("x"), rcr::Error);
  EXPECT_THROW(t.add_categorical("x", {"a", "b"}), rcr::Error);
}

TEST(TableTest, RaggedTableDetected) {
  Table t;
  t.add_numeric("a").push(1.0);
  t.add_numeric("b");
  EXPECT_THROW(t.validate_rectangular(), rcr::Error);
}

TEST(TableTest, FilterKeepsSchemaAndRows) {
  const Table t = make_sample_table();
  const Table phys = t.filter_equals("field", "phys");
  EXPECT_EQ(phys.row_count(), 2u);
  EXPECT_EQ(phys.categorical("field").categories().size(), 2u);
  EXPECT_DOUBLE_EQ(phys.numeric("score").at(1), 3.0);
  EXPECT_TRUE(phys.multiselect("langs").has(0, 0));
}

TEST(TableTest, FilterPreservesMissing) {
  const Table t = make_sample_table();
  const Table bio = t.filter_equals("field", "bio");
  EXPECT_EQ(bio.row_count(), 2u);
  EXPECT_TRUE(NumericColumn::is_missing(bio.numeric("score").at(1)));
  EXPECT_TRUE(bio.multiselect("langs").is_missing(1));
}

TEST(TableTest, FilterUnknownLabelThrows) {
  const Table t = make_sample_table();
  EXPECT_THROW(t.filter_equals("field", "chem"), rcr::Error);
}

TEST(TableTest, GroupRows) {
  const Table t = make_sample_table();
  const auto groups = t.group_rows("field");
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0], (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(groups[1], (std::vector<std::size_t>{1, 3}));
}

// --- crosstab ------------------------------------------------------------------

TEST(CrosstabTest, CategoricalByMultiselect) {
  const Table t = make_sample_table();
  const auto ct = crosstab_multiselect(t, "field", "langs");
  EXPECT_EQ(ct.row_labels, (std::vector<std::string>{"phys", "bio"}));
  EXPECT_EQ(ct.col_labels, (std::vector<std::string>{"py", "cpp", "r"}));
  EXPECT_DOUBLE_EQ(ct.counts.at(0, 0), 1.0);  // phys x py
  EXPECT_DOUBLE_EQ(ct.counts.at(0, 1), 2.0);  // phys x cpp
  EXPECT_DOUBLE_EQ(ct.counts.at(1, 2), 1.0);  // bio x r
}

TEST(CrosstabTest, CategoricalByCategorical) {
  Table t;
  auto& a = t.add_categorical("a", {"x", "y"});
  auto& b = t.add_categorical("b", {"u", "v"});
  a.push("x"); b.push("u");
  a.push("x"); b.push("v");
  a.push("y"); b.push("v");
  a.push_missing(); b.push("u");  // dropped
  const auto ct = crosstab(t, "a", "b");
  EXPECT_DOUBLE_EQ(ct.counts.grand_total(), 3.0);
  EXPECT_DOUBLE_EQ(ct.counts.at(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(ct.row_share(0, 0), 0.5);
}

TEST(CrosstabTest, WeightedCounts) {
  Table t;
  auto& a = t.add_categorical("a", {"x", "y"});
  auto& b = t.add_categorical("b", {"u", "v"});
  auto& w = t.add_numeric("w");
  a.push("x"); b.push("u"); w.push(2.0);
  a.push("x"); b.push("u"); w.push(0.5);
  a.push("y"); b.push("v"); w.push_missing();  // dropped
  const auto ct = crosstab(t, "a", "b", std::optional<std::string>{"w"});
  EXPECT_DOUBLE_EQ(ct.counts.at(0, 0), 2.5);
  EXPECT_DOUBLE_EQ(ct.counts.grand_total(), 2.5);
}

// Pins the set-bit kernel: the multi-select crosstab (which iterates each
// row's selections via countr_zero) must equal a literal probe of every
// (row, option) pair with has(), across a randomized mask table that
// exercises dense, sparse, empty, and missing rows.
TEST(CrosstabTest, MultiselectMatchesPerOptionProbing) {
  Table t;
  auto& g = t.add_categorical("g", {"a", "b", "c"});
  std::vector<std::string> opts;
  for (int o = 0; o < 11; ++o) opts.push_back("o" + std::to_string(o));
  auto& ms = t.add_multiselect("m", opts);
  std::uint64_t state = 42;
  const auto next = [&state] {  // splitmix64, enough for masks
    state += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  };
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t r = next();
    if (r % 13 == 0) g.push_missing();
    else g.push_code(static_cast<std::int32_t>(r % 3));
    if (r % 11 == 0) ms.push_missing();
    else ms.push_mask(next() & 0x7FFULL);  // any subset incl. empty
  }

  const auto ct = crosstab_multiselect(t, "g", "m");
  stats::Contingency probed(3, opts.size());
  for (std::size_t i = 0; i < t.row_count(); ++i) {
    if (g.is_missing(i) || ms.is_missing(i)) continue;
    for (std::size_t o = 0; o < opts.size(); ++o)
      if (ms.has(i, o)) probed.add(static_cast<std::size_t>(g.code_at(i)), o);
  }
  for (std::size_t r = 0; r < probed.rows(); ++r)
    for (std::size_t c = 0; c < probed.cols(); ++c)
      EXPECT_DOUBLE_EQ(ct.counts.at(r, c), probed.at(r, c))
          << "cell (" << r << ", " << c << ")";
  EXPECT_DOUBLE_EQ(ct.counts.grand_total(), probed.grand_total());
}

TEST(OptionSharesTest, ComputesWilsonIntervals) {
  const Table t = make_sample_table();
  const auto shares = option_shares(t, "langs");
  ASSERT_EQ(shares.size(), 3u);
  // 3 answered rows; py selected by 2.
  EXPECT_DOUBLE_EQ(shares[0].total, 3.0);
  EXPECT_NEAR(shares[0].share.estimate, 2.0 / 3.0, 1e-12);
  EXPECT_LT(shares[0].share.lo, shares[0].share.estimate);
  EXPECT_GT(shares[0].share.hi, shares[0].share.estimate);
}

TEST(CategorySharesTest, Computes) {
  const Table t = make_sample_table();
  const auto shares = category_shares(t, "field");
  ASSERT_EQ(shares.size(), 2u);
  EXPECT_DOUBLE_EQ(shares[0].count, 2.0);
  EXPECT_DOUBLE_EQ(shares[0].total, 4.0);
}

// --- CSV -----------------------------------------------------------------------

TEST(CsvTest, RoundTrip) {
  const Table t = make_sample_table();
  std::ostringstream out;
  write_csv(out, t);
  std::istringstream in(out.str());
  const Table back = read_csv(in, t);
  EXPECT_EQ(back.row_count(), t.row_count());
  EXPECT_EQ(back.categorical("field").label_at(0), "phys");
  EXPECT_DOUBLE_EQ(back.numeric("score").at(2), 3.0);
  EXPECT_TRUE(NumericColumn::is_missing(back.numeric("score").at(3)));
  EXPECT_TRUE(back.multiselect("langs").has(0, 1));
  EXPECT_TRUE(back.multiselect("langs").is_missing(3));
}

TEST(CsvTest, QuotedFieldsWithDelimiters) {
  Table schema;
  schema.add_categorical("name", {"a,b", "plain", "with \"quotes\""});
  schema.add_numeric("v");
  std::istringstream in(
      "name,v\n\"a,b\",1\nplain,2\n\"with \"\"quotes\"\"\",3\n");
  const Table t = read_csv(in, schema);
  EXPECT_EQ(t.row_count(), 3u);
  EXPECT_EQ(t.categorical("name").label_at(0), "a,b");
  EXPECT_EQ(t.categorical("name").label_at(2), "with \"quotes\"");

  // And write side escapes them back.
  std::ostringstream out;
  write_csv(out, t);
  std::istringstream in2(out.str());
  const Table t2 = read_csv(in2, schema);
  EXPECT_EQ(t2.categorical("name").label_at(0), "a,b");
}

TEST(CsvTest, SkipsBlankLinesInMultiColumnFiles) {
  Table schema;
  schema.add_numeric("x");
  schema.add_numeric("y");
  std::istringstream in("x,y\r\n1,2\r\n\r\n   \r\n3,4\r\n");
  const Table t = read_csv(in, schema);
  EXPECT_EQ(t.row_count(), 2u);
  EXPECT_DOUBLE_EQ(t.numeric("y").at(1), 4.0);
}

TEST(CsvTest, BlankLineIsAMissingRowInSingleColumnFiles) {
  // A blank line in a one-column file is a legitimate record whose only
  // cell is missing; the old reader silently dropped it.
  Table schema;
  schema.add_numeric("x");
  std::istringstream in("x\r\n1\r\n\r\n2\r\n");
  const Table t = read_csv(in, schema);
  ASSERT_EQ(t.row_count(), 3u);
  EXPECT_DOUBLE_EQ(t.numeric("x").at(0), 1.0);
  EXPECT_TRUE(NumericColumn::is_missing(t.numeric("x").at(1)));
  EXPECT_DOUBLE_EQ(t.numeric("x").at(2), 2.0);
}

TEST(CsvTest, BlankLineErrorsWhenSkippingDisabled) {
  Table schema;
  schema.add_numeric("x");
  schema.add_numeric("y");
  CsvOptions options;
  options.skip_blank_lines = false;
  std::istringstream in("x,y\n1,2\n\n3,4\n");
  EXPECT_THROW(read_csv(in, schema, options), rcr::InvalidInputError);
}

struct BadCsvCase {
  const char* name;
  const char* text;
};

class CsvErrorTest : public ::testing::TestWithParam<BadCsvCase> {};

TEST_P(CsvErrorTest, RejectsMalformedInput) {
  Table schema;
  schema.add_categorical("c", {"a", "b"});
  schema.add_numeric("n");
  std::istringstream in(GetParam().text);
  EXPECT_THROW(read_csv(in, schema), rcr::InvalidInputError)
      << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, CsvErrorTest,
    ::testing::Values(
        BadCsvCase{"empty", ""},
        BadCsvCase{"unknown_header", "c,wrong\na,1\n"},
        BadCsvCase{"missing_column", "c\na\n"},
        BadCsvCase{"wrong_field_count", "c,n\na\n"},
        BadCsvCase{"bad_number", "c,n\na,xyz\n"},
        BadCsvCase{"unknown_category", "c,n\nz,1\n"},
        BadCsvCase{"unterminated_quote", "c,n\n\"a,1\n"}),
    [](const ::testing::TestParamInfo<BadCsvCase>& info) {
      return info.param.name;
    });

TEST(CsvTest, MultiselectUnknownOptionRejected) {
  Table schema;
  schema.add_multiselect("m", {"a", "b"});
  std::istringstream in("m\na|z\n");
  EXPECT_THROW(read_csv(in, schema), rcr::InvalidInputError);
}

TEST(CsvTest, FileNotFoundThrows) {
  Table schema;
  schema.add_numeric("x");
  EXPECT_THROW(read_csv_file("/nonexistent/path.csv", schema),
               rcr::InvalidInputError);
}

}  // namespace
}  // namespace rcr::data
