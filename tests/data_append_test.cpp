// Tests for Table::append_rows and trend::per_group_trend (the wave-pooling
// and drill-down extensions).
#include <gtest/gtest.h>

#include "data/table.hpp"
#include "trend/trend.hpp"
#include "util/error.hpp"

namespace rcr {
namespace {

data::Table make_wave(std::size_t a_hits, std::size_t a_n,
                      std::size_t b_hits, std::size_t b_n) {
  data::Table t;
  auto& field = t.add_categorical("field", {"a", "b"});
  auto& m = t.add_multiselect("m", {"x"});
  auto& v = t.add_numeric("v");
  const auto fill = [&](const char* label, std::size_t hits, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      field.push(label);
      m.push_mask(i < hits ? 1 : 0);
      v.push(static_cast<double>(i));
    }
  };
  fill("a", a_hits, a_n);
  fill("b", b_hits, b_n);
  return t;
}

TEST(AppendRowsTest, ConcatenatesMatchingSchemas) {
  auto t1 = make_wave(2, 4, 1, 3);
  const auto t2 = make_wave(1, 2, 2, 2);
  t1.append_rows(t2);
  EXPECT_EQ(t1.row_count(), 11u);
  EXPECT_NO_THROW(t1.validate_rectangular());
  // First appended row lands at index 7 with field "a", mask 1, v 0.
  EXPECT_EQ(t1.categorical("field").label_at(7), "a");
  EXPECT_EQ(t1.multiselect("m").mask_at(7), 1u);
  EXPECT_DOUBLE_EQ(t1.numeric("v").at(7), 0.0);
}

TEST(AppendRowsTest, PreservesMissingCells) {
  data::Table a;
  a.add_numeric("v").push(1.0);
  a.add_multiselect("m", {"x"}).push_mask(1);
  data::Table b;
  b.add_numeric("v").push_missing();
  b.add_multiselect("m", {"x"}).push_missing();
  a.append_rows(b);
  EXPECT_TRUE(data::NumericColumn::is_missing(a.numeric("v").at(1)));
  EXPECT_TRUE(a.multiselect("m").is_missing(1));
}

TEST(AppendRowsTest, RejectsSchemaMismatch) {
  auto t1 = make_wave(1, 2, 1, 2);
  data::Table other;
  other.add_numeric("v");
  EXPECT_THROW(t1.append_rows(other), rcr::Error);

  data::Table wrong_categories;
  wrong_categories.add_categorical("field", {"a", "c"});
  wrong_categories.add_multiselect("m", {"x"});
  wrong_categories.add_numeric("v");
  EXPECT_THROW(t1.append_rows(wrong_categories), rcr::Error);
}

TEST(PerGroupTrendTest, SplitsByGroupAndAdjusts) {
  // Group a: 10% -> 60% (strong shift); group b: flat 50%.
  const auto w1 = make_wave(10, 100, 50, 100);
  const auto w2 = make_wave(240, 400, 200, 400);
  const auto trends = trend::per_group_trend(w1, w2, "field", "m", "x");
  ASSERT_EQ(trends.size(), 2u);
  EXPECT_EQ(trends[0].indicator, "a");
  EXPECT_EQ(trends[0].direction, trend::Direction::kIncrease);
  EXPECT_EQ(trends[1].indicator, "b");
  EXPECT_EQ(trends[1].direction, trend::Direction::kStable);
  // Holm within the family: adjusted >= raw.
  for (const auto& t : trends) EXPECT_GE(t.p_adjusted, t.test.p_value);
}

TEST(PerGroupTrendTest, SkipsSmallGroups) {
  const auto w1 = make_wave(1, 3, 50, 100);  // group a too small
  const auto w2 = make_wave(2, 3, 60, 100);
  const auto trends =
      trend::per_group_trend(w1, w2, "field", "m", "x", /*min_group_n=*/5);
  ASSERT_EQ(trends.size(), 1u);
  EXPECT_EQ(trends[0].indicator, "b");
}

TEST(PerGroupTrendTest, RejectsMismatchedCategorySets) {
  const auto w1 = make_wave(1, 5, 1, 5);
  data::Table w2;
  w2.add_categorical("field", {"a", "z"});
  w2.add_multiselect("m", {"x"});
  w2.add_numeric("v");
  EXPECT_THROW(trend::per_group_trend(w1, w2, "field", "m", "x"),
               rcr::Error);
}

}  // namespace
}  // namespace rcr
