#include <gtest/gtest.h>

#include <cmath>

#include "kernels/matmul.hpp"
#include "kernels/montecarlo.hpp"
#include "kernels/nbody.hpp"
#include "kernels/spmv.hpp"
#include "kernels/stencil.hpp"
#include "kernels/suite.hpp"
#include "util/error.hpp"

namespace rcr::kernels {
namespace {

rcr::parallel::ThreadPool& pool() {
  static rcr::parallel::ThreadPool p(4);
  return p;
}

// --- stencil --------------------------------------------------------------------

TEST(StencilTest, BoundaryStaysFixed) {
  HeatGrid g(8, 8, 0.0, 100.0);
  for (int s = 0; s < 10; ++s) g.step_serial(0.25);
  EXPECT_DOUBLE_EQ(g.at(0, 0), 100.0);
  EXPECT_DOUBLE_EQ(g.at(9, 5), 100.0);
}

TEST(StencilTest, HeatFlowsInward) {
  HeatGrid g(16, 16, 0.0, 100.0);
  const double before = g.interior_sum();
  for (int s = 0; s < 50; ++s) g.step_serial(0.2);
  EXPECT_GT(g.interior_sum(), before);
  // Corner-adjacent interior warms faster than the center early on.
  EXPECT_GT(g.at(1, 1), g.at(8, 8));
}

TEST(StencilTest, ConvergesTowardBoundaryTemperature) {
  HeatGrid g(6, 6, 0.0, 50.0);
  for (int s = 0; s < 4000; ++s) g.step_serial(0.25);
  for (std::size_t y = 1; y <= 6; ++y)
    for (std::size_t x = 1; x <= 6; ++x) EXPECT_NEAR(g.at(x, y), 50.0, 1e-6);
}

TEST(StencilTest, ParallelMatchesSerialBitExactly) {
  HeatGrid a(33, 17, 0.0, 100.0);
  HeatGrid b(33, 17, 0.0, 100.0);
  for (int s = 0; s < 25; ++s) {
    a.step_serial(0.2);
    b.step_parallel(pool(), 0.2);
  }
  EXPECT_DOUBLE_EQ(a.max_abs_diff(b), 0.0);
}

TEST(StencilTest, RejectsUnstableAlpha) {
  HeatGrid g(4, 4);
  EXPECT_THROW(g.step_serial(0.3), rcr::Error);
  EXPECT_THROW(g.step_serial(0.0), rcr::Error);
  EXPECT_THROW(HeatGrid(0, 4), rcr::Error);
}

// --- matmul ---------------------------------------------------------------------

TEST(MatmulTest, KnownSmallProduct) {
  // [[1,2],[3,4]] * [[5,6],[7,8]] = [[19,22],[43,50]].
  const Dense a = {1, 2, 3, 4};
  const Dense b = {5, 6, 7, 8};
  Dense c(4);
  matmul_serial(a, b, c, 2);
  EXPECT_DOUBLE_EQ(c[0], 19.0);
  EXPECT_DOUBLE_EQ(c[1], 22.0);
  EXPECT_DOUBLE_EQ(c[2], 43.0);
  EXPECT_DOUBLE_EQ(c[3], 50.0);
}

TEST(MatmulTest, IdentityIsNeutral) {
  const std::size_t n = 17;
  const Dense a = random_matrix(n, 5);
  Dense id(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) id[i * n + i] = 1.0;
  Dense c(n * n);
  matmul_serial(a, id, c, n);
  EXPECT_NEAR(frobenius_diff(a, c), 0.0, 1e-12);
}

class MatmulVariantTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MatmulVariantTest, VariantsAgree) {
  const std::size_t n = GetParam();
  const Dense a = random_matrix(n, 1);
  const Dense b = random_matrix(n, 2);
  Dense c_serial(n * n), c_blocked(n * n), c_parallel(n * n);
  matmul_serial(a, b, c_serial, n);
  matmul_blocked(a, b, c_blocked, n, 16);
  matmul_parallel(pool(), a, b, c_parallel, n);
  EXPECT_NEAR(frobenius_diff(c_serial, c_blocked), 0.0, 1e-9);
  EXPECT_DOUBLE_EQ(frobenius_diff(c_serial, c_parallel), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, MatmulVariantTest,
                         ::testing::Values(1, 7, 16, 33, 64));

TEST(MatmulTest, ShapeMismatchThrows) {
  Dense a(4), b(4), c(9);
  EXPECT_THROW(matmul_serial(a, b, c, 2), rcr::Error);
}

// --- nbody ----------------------------------------------------------------------

TEST(NbodyTest, EnergyApproximatelyConserved) {
  Bodies b = random_bodies(64, 7);
  const double e0 = total_energy(b);
  for (int s = 0; s < 100; ++s) nbody_step_serial(b, 1e-4);
  const double e1 = total_energy(b);
  EXPECT_NEAR(e1, e0, std::fabs(e0) * 0.05 + 1e-6);
}

TEST(NbodyTest, ParallelMatchesSerialBitExactly) {
  Bodies a = random_bodies(100, 3);
  Bodies b = random_bodies(100, 3);
  for (int s = 0; s < 5; ++s) {
    nbody_step_serial(a, 1e-3);
    nbody_step_parallel(pool(), b, 1e-3);
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.x[i], b.x[i]);
    EXPECT_DOUBLE_EQ(a.vy[i], b.vy[i]);
  }
}

TEST(NbodyTest, TwoBodyAttraction) {
  Bodies b;
  b.x = {0.0, 1.0};
  b.y = {0.0, 0.0};
  b.z = {0.0, 0.0};
  b.vx = {0.0, 0.0};
  b.vy = {0.0, 0.0};
  b.vz = {0.0, 0.0};
  b.mass = {1.0, 1.0};
  nbody_step_serial(b, 1e-2);
  EXPECT_GT(b.x[0], 0.0);  // pulled right
  EXPECT_LT(b.x[1], 1.0);  // pulled left
  EXPECT_DOUBLE_EQ(b.y[0], 0.0);
}

TEST(NbodyTest, RejectsTooFewBodies) {
  EXPECT_THROW(random_bodies(1, 1), rcr::Error);
}

// --- Monte Carlo ----------------------------------------------------------------

TEST(MonteCarloTest, PiEstimateConverges) {
  const double pi = mc_pi_serial(2000000, 42);
  EXPECT_NEAR(pi, M_PI, 0.01);
}

TEST(MonteCarloTest, ParallelPiIdenticalToSerial) {
  for (std::size_t samples : {1000u, 4096u, 100001u}) {
    EXPECT_DOUBLE_EQ(mc_pi_serial(samples, 9),
                     mc_pi_parallel(pool(), samples, 9));
  }
}

TEST(MonteCarloTest, IntegrationKnownValue) {
  // ∫0..1 x² dx = 1/3.
  const auto f = [](double x) { return x * x; };
  const double v = mc_integrate_serial(f, 0.0, 1.0, 500000, 3);
  EXPECT_NEAR(v, 1.0 / 3.0, 0.005);
  const double vp = mc_integrate_parallel(pool(), f, 0.0, 1.0, 500000, 3);
  EXPECT_NEAR(vp, v, 1e-9);  // same streams, only summation order differs
}

TEST(MonteCarloTest, RejectsBadArguments) {
  EXPECT_THROW(mc_pi_serial(0, 1), rcr::Error);
  EXPECT_THROW(
      mc_integrate_serial([](double x) { return x; }, 1.0, 0.0, 100, 1),
      rcr::Error);
}

// --- SpMV -----------------------------------------------------------------------

TEST(SpmvTest, CsrStructureIsValid) {
  const Csr a = random_csr(200, 150, 8, 11);
  EXPECT_EQ(a.row_ptr.size(), 201u);
  EXPECT_EQ(a.row_ptr.front(), 0u);
  EXPECT_EQ(a.row_ptr.back(), a.nnz());
  for (std::size_t r = 0; r < a.rows; ++r) {
    EXPECT_GE(a.row_ptr[r + 1], a.row_ptr[r] + 1);  // at least 1 per row
    for (std::size_t k = a.row_ptr[r]; k < a.row_ptr[r + 1]; ++k) {
      EXPECT_LT(a.col_idx[k], a.cols);
      if (k > a.row_ptr[r]) {
        EXPECT_GT(a.col_idx[k], a.col_idx[k - 1]);
      }
    }
  }
}

TEST(SpmvTest, KnownProduct) {
  // [[2, 0], [1, 3]] in CSR.
  Csr a;
  a.rows = 2;
  a.cols = 2;
  a.row_ptr = {0, 1, 3};
  a.col_idx = {0, 0, 1};
  a.values = {2.0, 1.0, 3.0};
  std::vector<double> y;
  spmv_serial(a, {4.0, 5.0}, y);
  EXPECT_DOUBLE_EQ(y[0], 8.0);
  EXPECT_DOUBLE_EQ(y[1], 19.0);
}

TEST(SpmvTest, ParallelMatchesSerialBitExactly) {
  const Csr a = random_csr(5000, 5000, 10, 13);
  std::vector<double> x(a.cols);
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = std::sin(static_cast<double>(i));
  std::vector<double> ys, yp;
  spmv_serial(a, x, ys);
  spmv_parallel(pool(), a, x, yp);
  ASSERT_EQ(ys.size(), yp.size());
  for (std::size_t i = 0; i < ys.size(); ++i) EXPECT_DOUBLE_EQ(ys[i], yp[i]);
}

TEST(SpmvTest, RejectsSizeMismatch) {
  const Csr a = random_csr(10, 10, 2, 1);
  std::vector<double> x(5), y;
  EXPECT_THROW(spmv_serial(a, x, y), rcr::Error);
}

// --- suite ----------------------------------------------------------------------

TEST(SuiteTest, AllKernelsVerifySerialVsParallel) {
  for (const auto& k : standard_suite()) {
    const double serial = k.run_serial();
    const double parallel = k.run_parallel(pool());
    // Monte Carlo & stencil & spmv are bit-identical; others may reorder
    // float sums, so allow a relative tolerance.
    EXPECT_NEAR(parallel, serial,
                std::max(1e-6, std::fabs(serial) * 1e-9))
        << k.name;
    EXPECT_GT(k.work_ops, 0.0) << k.name;
    EXPECT_GE(k.serial_fraction, 0.0) << k.name;
    EXPECT_LT(k.serial_fraction, 0.2) << k.name;
  }
}

TEST(SuiteTest, HasExpectedArchetypes) {
  const auto suite = standard_suite();
  ASSERT_EQ(suite.size(), 6u);
  EXPECT_THROW(standard_suite(0), rcr::Error);
}

}  // namespace
}  // namespace rcr::kernels
