#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "stats/descriptive.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rcr::stats {
namespace {

const std::vector<double> kSample = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};

TEST(DescriptiveTest, MeanAndVariance) {
  EXPECT_DOUBLE_EQ(mean(kSample), 5.0);
  // Known population variance of this classic sample is 4.
  EXPECT_DOUBLE_EQ(variance_population(kSample), 4.0);
  EXPECT_NEAR(variance(kSample), 4.0 * 8.0 / 7.0, 1e-12);
  EXPECT_NEAR(stddev(kSample), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(DescriptiveTest, SumIsAccurateForMixedMagnitudes) {
  // Neumaier summation survives a large term cancelling back out; a naive
  // loop returns 0 here because 1e16 + 1 rounds to 1e16.
  const std::vector<double> v = {1e16, 1.0, -1e16};
  EXPECT_DOUBLE_EQ(sum(v), 1.0);
}

TEST(DescriptiveTest, MinMax) {
  EXPECT_DOUBLE_EQ(min(kSample), 2.0);
  EXPECT_DOUBLE_EQ(max(kSample), 9.0);
}

TEST(DescriptiveTest, EmptyDataThrows) {
  const std::vector<double> empty;
  EXPECT_THROW(mean(empty), rcr::Error);
  EXPECT_THROW(min(empty), rcr::Error);
  EXPECT_THROW(quantile(empty, 0.5), rcr::Error);
  EXPECT_THROW(variance(std::vector<double>{1.0}), rcr::Error);
}

TEST(DescriptiveTest, Geomean) {
  EXPECT_NEAR(geomean(std::vector<double>{1.0, 8.0}),
              std::sqrt(8.0), 1e-12);
  EXPECT_NEAR(geomean(std::vector<double>{2.0, 2.0, 2.0}), 2.0, 1e-12);
  EXPECT_THROW(geomean(std::vector<double>{1.0, 0.0}), rcr::Error);
}

TEST(DescriptiveTest, WeightedMean) {
  const std::vector<double> x = {1.0, 3.0};
  EXPECT_DOUBLE_EQ(weighted_mean(x, std::vector<double>{1.0, 1.0}), 2.0);
  EXPECT_DOUBLE_EQ(weighted_mean(x, std::vector<double>{3.0, 1.0}), 1.5);
  EXPECT_THROW(weighted_mean(x, std::vector<double>{0.0, 0.0}), rcr::Error);
  EXPECT_THROW(weighted_mean(x, std::vector<double>{1.0}), rcr::Error);
}

TEST(DescriptiveTest, EffectiveSampleSize) {
  // Equal weights: ESS = n.
  EXPECT_DOUBLE_EQ(effective_sample_size(std::vector<double>{2, 2, 2, 2}),
                   4.0);
  // One dominant weight: ESS -> 1.
  EXPECT_NEAR(effective_sample_size(std::vector<double>{100, 0.0, 0.0}), 1.0,
              1e-12);
}

TEST(QuantileTest, Type7Interpolation) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 1.75);  // numpy default agrees
  EXPECT_DOUBLE_EQ(median(std::vector<double>{3.0, 1.0, 2.0}), 2.0);
}

TEST(QuantileTest, SingleElement) {
  const std::vector<double> v = {42.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 42.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 42.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 42.0);
}

TEST(QuantileTest, RejectsOutOfRangeQ) {
  EXPECT_THROW(quantile(kSample, -0.1), rcr::Error);
  EXPECT_THROW(quantile(kSample, 1.1), rcr::Error);
}

TEST(SkewnessTest, SymmetricIsZero) {
  EXPECT_NEAR(skewness(std::vector<double>{-2, -1, 0, 1, 2}), 0.0, 1e-12);
}

TEST(SkewnessTest, RightSkewPositive) {
  EXPECT_GT(skewness(std::vector<double>{1, 1, 1, 1, 10}), 0.0);
  EXPECT_LT(skewness(std::vector<double>{-10, 1, 1, 1, 1}), 0.0);
}

TEST(SkewnessTest, Degenerate) {
  EXPECT_THROW(skewness(std::vector<double>{1.0, 2.0}), rcr::Error);
  EXPECT_THROW(skewness(std::vector<double>{3.0, 3.0, 3.0}), rcr::Error);
}

TEST(CorrelationTest, PerfectLinear) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  std::vector<double> neg;
  for (double v : y) neg.push_back(-v);
  EXPECT_NEAR(pearson(x, neg), -1.0, 1e-12);
}

TEST(CorrelationTest, KnownValue) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {2, 1, 4, 3, 5};
  EXPECT_NEAR(pearson(x, y), 0.8, 1e-12);
  EXPECT_NEAR(spearman(x, y), 0.8, 1e-12);  // same ranks here
}

TEST(CorrelationTest, SpearmanMonotonicNonlinear) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y;
  for (double v : x) y.push_back(std::exp(v));  // monotone but curved
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
  EXPECT_LT(pearson(x, y), 1.0);
}

TEST(RanksTest, TiesGetAverageRank) {
  const auto r = ranks(std::vector<double>{10.0, 20.0, 20.0, 30.0});
  EXPECT_DOUBLE_EQ(r[0], 1.0);
  EXPECT_DOUBLE_EQ(r[1], 2.5);
  EXPECT_DOUBLE_EQ(r[2], 2.5);
  EXPECT_DOUBLE_EQ(r[3], 4.0);
}

TEST(RanksTest, AllEqual) {
  const auto r = ranks(std::vector<double>{7.0, 7.0, 7.0});
  for (double v : r) EXPECT_DOUBLE_EQ(v, 2.0);
}

TEST(SummaryTest, AllFieldsConsistent) {
  const auto s = summarize(kSample);
  EXPECT_EQ(s.n, kSample.size());
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.median, 4.5);
  EXPECT_LE(s.p25, s.median);
  EXPECT_LE(s.median, s.p75);
}

// Property: quantiles are monotone in q for random data.
class QuantileMonotoneTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QuantileMonotoneTest, MonotoneInQ) {
  rcr::Rng rng(GetParam());
  std::vector<double> v(57);
  for (double& x : v) x = rng.normal(0.0, 3.0);
  std::sort(v.begin(), v.end());
  double prev = quantile_sorted(v, 0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double cur = quantile_sorted(v, q);
    EXPECT_GE(cur, prev - 1e-12);
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantileMonotoneTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace rcr::stats
