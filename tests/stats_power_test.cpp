#include <gtest/gtest.h>

#include "stats/power.hpp"
#include "util/error.hpp"

namespace rcr::stats {
namespace {

TEST(PowerTest, AlphaWhenNoEffect) {
  // With p1 == p2 the "power" is the type-I error rate.
  EXPECT_NEAR(two_proportion_power(0.3, 0.3, 500), 0.05, 0.005);
}

TEST(PowerTest, GrowsWithNAndEffect) {
  const double small_n = two_proportion_power(0.3, 0.4, 50);
  const double big_n = two_proportion_power(0.3, 0.4, 500);
  EXPECT_GT(big_n, small_n);
  const double small_eff = two_proportion_power(0.3, 0.35, 200);
  const double big_eff = two_proportion_power(0.3, 0.5, 200);
  EXPECT_GT(big_eff, small_eff);
}

TEST(PowerTest, KnownTextbookValue) {
  // Detecting 0.5 vs 0.6 with n = 388 per group gives ~80% power at
  // alpha = 0.05 (standard tables put the requirement near 387–408).
  EXPECT_NEAR(two_proportion_power(0.5, 0.6, 388), 0.80, 0.02);
}

TEST(PowerTest, SampleSizeAchievesRequestedPower) {
  const auto n = two_proportion_sample_size(0.5, 0.6, 0.8);
  EXPECT_GE(two_proportion_power(0.5, 0.6, static_cast<double>(n)), 0.8);
  EXPECT_LT(two_proportion_power(0.5, 0.6, static_cast<double>(n - 1)), 0.8);
  EXPECT_NEAR(static_cast<double>(n), 388.0, 25.0);
}

TEST(PowerTest, SampleSizeShrinksForBigEffects) {
  EXPECT_LT(two_proportion_sample_size(0.2, 0.6),
            two_proportion_sample_size(0.2, 0.3));
}

TEST(PowerTest, MinimumDetectableDifferenceRoundTrips) {
  const double mdd = minimum_detectable_difference(0.4, 300, 300, 0.8);
  EXPECT_GT(mdd, 0.0);
  EXPECT_LT(mdd, 0.5);
  // Power at exactly the MDD should be ~the requested power.
  EXPECT_NEAR(two_proportion_power(0.4, 0.4 + mdd, 300), 0.8, 0.02);
}

TEST(PowerTest, UnequalWavesLikeTheStudy) {
  // The study's default waves: 120 vs 650. The detectable shift from a
  // 30% baseline should be roughly 13-16 points — context for T6's
  // "stable" rows.
  const double mdd = minimum_detectable_difference(0.3, 120, 650, 0.8);
  EXPECT_GT(mdd, 0.08);
  EXPECT_LT(mdd, 0.20);
}

TEST(PowerTest, RejectsBadInput) {
  EXPECT_THROW(two_proportion_power(0.0, 0.5, 100), rcr::Error);
  EXPECT_THROW(two_proportion_power(0.3, 1.0, 100), rcr::Error);
  EXPECT_THROW(two_proportion_sample_size(0.4, 0.4), rcr::Error);
  EXPECT_THROW(two_proportion_sample_size(0.4, 0.5, 1.5), rcr::Error);
  EXPECT_THROW(minimum_detectable_difference(0.4, 1.0, 100), rcr::Error);
}

}  // namespace
}  // namespace rcr::stats
