#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/matrix.hpp"
#include "stats/regression.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rcr::stats {
namespace {

// --- matrix -------------------------------------------------------------------

TEST(MatrixTest, MultiplyAndTranspose) {
  Matrix a(2, 3);
  a.at(0, 0) = 1; a.at(0, 1) = 2; a.at(0, 2) = 3;
  a.at(1, 0) = 4; a.at(1, 1) = 5; a.at(1, 2) = 6;
  const auto at = a.transpose();
  EXPECT_EQ(at.rows(), 3u);
  EXPECT_DOUBLE_EQ(at.at(2, 1), 6.0);
  const auto aat = a.multiply(at);
  EXPECT_DOUBLE_EQ(aat.at(0, 0), 14.0);
  EXPECT_DOUBLE_EQ(aat.at(0, 1), 32.0);
  EXPECT_DOUBLE_EQ(aat.at(1, 1), 77.0);
  const auto g = a.gram();  // A^T A, 3x3
  EXPECT_DOUBLE_EQ(g.at(0, 0), 17.0);
  EXPECT_DOUBLE_EQ(g.at(0, 2), 27.0);
  EXPECT_DOUBLE_EQ(g.at(2, 0), 27.0);
}

TEST(MatrixTest, VectorMultiply) {
  Matrix a(2, 2);
  a.at(0, 0) = 2; a.at(0, 1) = 0; a.at(1, 0) = 1; a.at(1, 1) = 3;
  const auto v = a.multiply(std::vector<double>{1.0, 2.0});
  EXPECT_DOUBLE_EQ(v[0], 2.0);
  EXPECT_DOUBLE_EQ(v[1], 7.0);
}

TEST(CholeskyTest, SolvesSpdSystem) {
  Matrix a(2, 2);
  a.at(0, 0) = 4; a.at(0, 1) = 2; a.at(1, 0) = 2; a.at(1, 1) = 3;
  const auto x = cholesky_solve(a, std::vector<double>{10.0, 8.0});
  EXPECT_NEAR(4 * x[0] + 2 * x[1], 10.0, 1e-10);
  EXPECT_NEAR(2 * x[0] + 3 * x[1], 8.0, 1e-10);
}

TEST(CholeskyTest, RejectsIndefinite) {
  Matrix a(2, 2);
  a.at(0, 0) = 1; a.at(0, 1) = 2; a.at(1, 0) = 2; a.at(1, 1) = 1;
  EXPECT_THROW(cholesky_solve(a, std::vector<double>{1.0, 1.0}),
               rcr::ComputeError);
}

TEST(LuTest, SolvesGeneralSystem) {
  Matrix a(3, 3);
  const double vals[3][3] = {{0, 2, 1}, {3, 0, 1}, {1, 1, 1}};
  for (int r = 0; r < 3; ++r)
    for (int c = 0; c < 3; ++c) a.at(r, c) = vals[r][c];
  const std::vector<double> b = {5.0, 7.0, 6.0};
  const auto x = lu_solve(a, b);
  for (int r = 0; r < 3; ++r) {
    double lhs = 0.0;
    for (int c = 0; c < 3; ++c) lhs += vals[r][c] * x[c];
    EXPECT_NEAR(lhs, b[r], 1e-10);
  }
}

TEST(LuTest, RejectsSingular) {
  Matrix a(2, 2);
  a.at(0, 0) = 1; a.at(0, 1) = 2; a.at(1, 0) = 2; a.at(1, 1) = 4;
  EXPECT_THROW(lu_solve(a, std::vector<double>{1.0, 1.0}),
               rcr::ComputeError);
}

// --- OLS ----------------------------------------------------------------------

TEST(OlsTest, ExactLineRecovered) {
  // y = 3 + 2x with no noise.
  std::vector<double> x, y;
  for (int i = 0; i < 10; ++i) {
    x.push_back(i);
    y.push_back(3.0 + 2.0 * i);
  }
  const auto fit = ols_fit_simple(x, y);
  EXPECT_NEAR(fit.coefficients[0], 3.0, 1e-10);
  EXPECT_NEAR(fit.coefficients[1], 2.0, 1e-10);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
  EXPECT_NEAR(fit.residual_stddev, 0.0, 1e-8);
  EXPECT_NEAR(fit.predict(std::vector<double>{20.0}), 43.0, 1e-8);
}

TEST(OlsTest, NoisyFitRecoversCoefficients) {
  rcr::Rng rng(3);
  std::vector<std::vector<double>> xs;
  std::vector<double> y;
  for (int i = 0; i < 500; ++i) {
    const double a = rng.uniform(-2, 2), b = rng.uniform(-2, 2);
    xs.push_back({a, b});
    y.push_back(1.5 - 0.8 * a + 2.2 * b + rng.normal(0, 0.3));
  }
  const auto fit = ols_fit(xs, y);
  EXPECT_NEAR(fit.coefficients[0], 1.5, 0.05);
  EXPECT_NEAR(fit.coefficients[1], -0.8, 0.05);
  EXPECT_NEAR(fit.coefficients[2], 2.2, 0.05);
  EXPECT_GT(fit.r_squared, 0.95);
  // Standard errors should be small and positive.
  for (double se : fit.std_errors) {
    EXPECT_GT(se, 0.0);
    EXPECT_LT(se, 0.1);
  }
}

TEST(OlsTest, KnownSimpleRegression) {
  // Hand-computed: x = {1,2,3}, y = {2, 2, 4} -> slope 1, intercept 2/3.
  const auto fit = ols_fit_simple(std::vector<double>{1, 2, 3},
                                  std::vector<double>{2, 2, 4});
  EXPECT_NEAR(fit.coefficients[1], 1.0, 1e-10);
  EXPECT_NEAR(fit.coefficients[0], 2.0 / 3.0, 1e-10);
}

TEST(OlsTest, RejectsUnderdetermined) {
  std::vector<std::vector<double>> xs = {{1.0}, {2.0}};
  EXPECT_THROW(ols_fit(xs, std::vector<double>{1.0, 2.0}), rcr::Error);
}

TEST(OlsTest, RejectsCollinearPredictors) {
  std::vector<std::vector<double>> xs;
  std::vector<double> y;
  for (int i = 0; i < 10; ++i) {
    xs.push_back({double(i), 2.0 * i});  // perfectly collinear
    y.push_back(i);
  }
  EXPECT_THROW(ols_fit(xs, y), rcr::ComputeError);
}

// --- logistic -------------------------------------------------------------------

TEST(SigmoidTest, BasicValues) {
  EXPECT_DOUBLE_EQ(sigmoid(0.0), 0.5);
  EXPECT_NEAR(sigmoid(2.0), 1.0 / (1.0 + std::exp(-2.0)), 1e-14);
  EXPECT_NEAR(sigmoid(-800.0), 0.0, 1e-300);  // no overflow
  EXPECT_NEAR(sigmoid(800.0), 1.0, 1e-300);
}

TEST(LogisticTest, RecoversGeneratingModel) {
  rcr::Rng rng(9);
  std::vector<std::vector<double>> xs;
  std::vector<double> y;
  const double b0 = -1.0, b1 = 2.0;
  for (int i = 0; i < 4000; ++i) {
    const double x = rng.uniform(-3, 3);
    xs.push_back({x});
    y.push_back(rng.bernoulli(sigmoid(b0 + b1 * x)) ? 1.0 : 0.0);
  }
  const auto fit = logistic_fit(xs, y);
  EXPECT_TRUE(fit.converged);
  EXPECT_NEAR(fit.coefficients[0], b0, 0.15);
  EXPECT_NEAR(fit.coefficients[1], b1, 0.2);
  EXPECT_LT(fit.log_likelihood, 0.0);
  EXPECT_GT(fit.predict(std::vector<double>{3.0}), 0.95);
  EXPECT_LT(fit.predict(std::vector<double>{-3.0}), 0.1);
}

TEST(LogisticTest, SeparableDataStaysFiniteWithRidge) {
  std::vector<std::vector<double>> xs;
  std::vector<double> y;
  for (int i = 0; i < 20; ++i) {
    xs.push_back({static_cast<double>(i)});
    y.push_back(i < 10 ? 0.0 : 1.0);
  }
  const auto fit = logistic_fit(xs, y, {}, /*ridge_lambda=*/1e-2);
  for (double c : fit.coefficients) EXPECT_TRUE(std::isfinite(c));
  EXPECT_GT(fit.coefficients[1], 0.0);
}

TEST(LogisticTest, WeightsShiftTheFit) {
  // Same data, but weighting the positive class more raises the intercept.
  std::vector<std::vector<double>> xs;
  std::vector<double> y, w_up, w_eq;
  rcr::Rng rng(21);
  for (int i = 0; i < 500; ++i) {
    xs.push_back({rng.uniform(-1, 1)});
    y.push_back(rng.bernoulli(0.4) ? 1.0 : 0.0);
    w_eq.push_back(1.0);
    w_up.push_back(y.back() == 1.0 ? 3.0 : 1.0);
  }
  const auto base = logistic_fit(xs, y, w_eq);
  const auto boosted = logistic_fit(xs, y, w_up);
  EXPECT_GT(boosted.coefficients[0], base.coefficients[0]);
}

TEST(LogisticTest, RejectsNonBinaryLabels) {
  std::vector<std::vector<double>> xs = {{1.0}, {2.0}};
  EXPECT_THROW(logistic_fit(xs, std::vector<double>{0.0, 0.5}), rcr::Error);
}

}  // namespace
}  // namespace rcr::stats
