// Tests for the nonresponse-bias generator mode and its interaction with
// raking (the F9 methodology experiment's machinery).
#include <gtest/gtest.h>

#include "data/crosstab.hpp"
#include "survey/schema.hpp"
#include "synth/domain.hpp"
#include "synth/generator.hpp"
#include "util/error.hpp"

namespace rcr::synth {
namespace {

double share(const data::Table& t, const char* column, const char* option) {
  for (const auto& s : data::option_shares(t, column))
    if (s.label == option) return s.share.estimate;
  throw rcr::Error("option not found");
}

TEST(NonresponseTest, ZeroStrengthMatchesDefaultPath) {
  GeneratorConfig a{Wave::k2024, 100, 42, nullptr, 0.0};
  const auto t1 = generate_wave(a);
  const auto t2 = generate_wave({Wave::k2024, 100, 42, nullptr});
  EXPECT_EQ(t1.multiselect(col::kLanguages).mask_at(31),
            t2.multiselect(col::kLanguages).mask_at(31));
}

TEST(NonresponseTest, DeterministicForSeed) {
  GeneratorConfig cfg{Wave::k2024, 150, 9, nullptr, 0.7};
  const auto a = generate_wave(cfg);
  const auto b = generate_wave(cfg);
  for (std::size_t i = 0; i < a.row_count(); ++i) {
    EXPECT_EQ(a.categorical(col::kField).code_at(i),
              b.categorical(col::kField).code_at(i));
    EXPECT_EQ(a.multiselect(col::kSePractices).is_missing(i),
              b.multiselect(col::kSePractices).is_missing(i));
  }
}

TEST(NonresponseTest, ProducesRequestedSizeAndValidResponses) {
  GeneratorConfig cfg{Wave::k2011, 321, 5, nullptr, 0.5};
  const auto t = generate_wave(cfg);
  EXPECT_EQ(t.row_count(), 321u);
  EXPECT_TRUE(survey::validate_responses(instrument(), t).empty());
}

TEST(NonresponseTest, BiasSkewsTowardIntensiveRespondents) {
  // With strong trait-driven nonresponse the sample over-represents heavy
  // programmers: trait-correlated indicators (CI adoption, high expertise)
  // read higher than in an unbiased sample of the same population.
  const std::size_t n = 5000;
  const auto unbiased =
      generate_wave({Wave::k2024, n, 31, nullptr, 0.0});
  const auto biased = generate_wave({Wave::k2024, n, 31, nullptr, 0.9});

  EXPECT_GT(share(biased, col::kSePractices, "Continuous integration"),
            share(unbiased, col::kSePractices, "Continuous integration"));
  EXPECT_GT(share(biased, col::kLanguages, "C++"),
            share(unbiased, col::kLanguages, "C++"));

  const auto mean_expertise = [](const data::Table& t) {
    const auto v = t.numeric(col::kExpertise).present_values();
    double s = 0.0;
    for (double x : v) s += x;
    return s / static_cast<double>(v.size());
  };
  EXPECT_GT(mean_expertise(biased), mean_expertise(unbiased) + 0.05);
}

TEST(NonresponseTest, RejectsOutOfRangeStrength) {
  EXPECT_THROW(generate_wave({Wave::k2024, 10, 1, nullptr, 1.0}),
               rcr::Error);
  EXPECT_THROW(generate_wave({Wave::k2024, 10, 1, nullptr, -0.1}),
               rcr::Error);
}

TEST(WeightedOptionShareTest, UniformWeightsMatchUnweighted) {
  const auto t = generate_wave({Wave::k2024, 400, 3, nullptr});
  const std::vector<double> w(t.row_count(), 1.0);
  const auto weighted =
      data::weighted_option_share(t, col::kLanguages, "Python", w);
  const double plain = share(t, col::kLanguages, "Python");
  EXPECT_NEAR(weighted.share.estimate, plain, 1e-12);
}

TEST(WeightedOptionShareTest, WeightsShiftTheShare) {
  data::Table t;
  auto& m = t.add_multiselect("m", {"x"});
  m.push_mask(1);  // selects x
  m.push_mask(0);  // does not
  const auto up = data::weighted_option_share(
      t, "m", "x", std::vector<double>{3.0, 1.0});
  EXPECT_DOUBLE_EQ(up.share.estimate, 0.75);
  const auto down = data::weighted_option_share(
      t, "m", "x", std::vector<double>{1.0, 3.0});
  EXPECT_DOUBLE_EQ(down.share.estimate, 0.25);
}

TEST(WeightedOptionShareTest, RejectsBadInput) {
  data::Table t;
  t.add_multiselect("m", {"x"}).push_mask(1);
  EXPECT_THROW(
      data::weighted_option_share(t, "m", "x", std::vector<double>{1.0, 2.0}),
      rcr::Error);
  EXPECT_THROW(
      data::weighted_option_share(t, "m", "zzz", std::vector<double>{1.0}),
      rcr::Error);
  EXPECT_THROW(
      data::weighted_option_share(t, "m", "x", std::vector<double>{-1.0}),
      rcr::Error);
}

TEST(CodebookTest, RendersEveryQuestion) {
  const std::string codebook = survey::render_codebook(instrument());
  for (const auto& q : instrument().questions()) {
    EXPECT_NE(codebook.find("`" + q.id + "`"), std::string::npos) << q.id;
  }
  EXPECT_NE(codebook.find("single choice"), std::string::npos);
  EXPECT_NE(codebook.find("multi-select"), std::string::npos);
  EXPECT_NE(codebook.find("Likert 1..5"), std::string::npos);
  EXPECT_NE(codebook.find("numeric"), std::string::npos);
  EXPECT_NE(codebook.find("(required)"), std::string::npos);
}

}  // namespace
}  // namespace rcr::synth
