// The batched draw pipeline's determinism contract, pinned bitwise:
//
//   * Rng::fill_* emit exactly the sequence of the matching scalar calls.
//   * BatchRng output position i (counted since construction, across all
//     fill calls of any kind and size) comes from stream i % kStreams, and
//     stream k is exactly Rng(BatchRng::stream_seed(seed, k)).
//   * The resampling fast paths (bootstrap_mean, permutation mean-diff,
//     AliasTable::sample_batch, bernoulli_mask) reproduce their generic
//     counterparts byte for byte.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "stats/bootstrap.hpp"
#include "stats/descriptive.hpp"
#include "stats/permutation.hpp"
#include "util/rng.hpp"

namespace rcr {
namespace {

std::uint64_t bits_of(double v) {
  std::uint64_t b = 0;
  std::memcpy(&b, &v, sizeof(v));
  return b;
}

TEST(RngBatchTest, FillU64MatchesScalarLoop) {
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                              std::size_t{64}, std::size_t{1000}}) {
    Rng scalar(123), batched(123);
    std::vector<std::uint64_t> out(n);
    batched.fill_u64(out);
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(out[i], scalar.next_u64()) << "n=" << n << " i=" << i;
    // Streams stay in lockstep after the fill.
    EXPECT_EQ(batched.next_u64(), scalar.next_u64());
  }
}

TEST(RngBatchTest, FillDoubleMatchesScalarLoop) {
  Rng scalar(9), batched(9);
  std::vector<double> out(513);
  batched.fill_double(out);
  for (std::size_t i = 0; i < out.size(); ++i)
    ASSERT_EQ(bits_of(out[i]), bits_of(scalar.next_double())) << i;
}

TEST(RngBatchTest, FillBelowMatchesScalarLoop) {
  // Small, typical, and rejection-heavy bounds; the last rejects ~half of
  // all raw draws, exercising the redraw path.
  for (const std::uint64_t bound :
       {std::uint64_t{1}, std::uint64_t{7}, std::uint64_t{1000},
        (std::uint64_t{1} << 63) + 1}) {
    Rng scalar(77), batched(77);
    std::vector<std::uint64_t> out(777);
    batched.fill_below(bound, out);
    for (std::size_t i = 0; i < out.size(); ++i) {
      ASSERT_LT(out[i], bound);
      ASSERT_EQ(out[i], scalar.next_below(bound))
          << "bound=" << bound << " i=" << i;
    }
    EXPECT_EQ(batched.next_u64(), scalar.next_u64()) << "bound=" << bound;
  }
}

TEST(RngBatchTest, BernoulliMaskMatchesSequentialCoins) {
  Rng scalar(5), batched(5);
  // Interior, degenerate-zero, degenerate-one, clamped-out-of-range.
  const std::vector<double> p = {0.3, 0.0, 1.0,  0.99, -0.5, 1.5,
                                 0.5, 0.0, 0.01, 0.62, 1.0,  0.4};
  for (int round = 0; round < 8; ++round) {
    std::uint64_t expected = 0;
    for (std::size_t i = 0; i < p.size(); ++i)
      if (scalar.bernoulli(p[i])) expected |= std::uint64_t{1} << i;
    EXPECT_EQ(batched.bernoulli_mask(p), expected) << "round=" << round;
  }
  // Both consumed the same number of draws.
  EXPECT_EQ(batched.next_u64(), scalar.next_u64());
}

TEST(RngBatchTest, BufferedDrawsMatchDirectDraws) {
  Rng direct(31);
  Rng buffered_src(31);
  BufferedDraws draws(buffered_src, 300);
  for (std::size_t i = 0; i < 300; ++i) {
    if (i % 3 == 0) {
      ASSERT_EQ(draws.take(), direct.next_u64()) << i;
    } else {
      const std::uint64_t bound = 10 + i;
      ASSERT_EQ(draws.take_below(bound), direct.next_below(bound)) << i;
    }
  }
}

// Reference model for BatchRng: kStreams independent Rngs served
// round-robin by global output position, regardless of how the positions
// are split across calls or which fill kind each call uses.
class BatchReference {
 public:
  explicit BatchReference(std::uint64_t seed) {
    streams_.reserve(BatchRng::kStreams);
    for (std::size_t k = 0; k < BatchRng::kStreams; ++k)
      streams_.emplace_back(BatchRng::stream_seed(seed, k));
  }

  std::uint64_t next_u64() { return next_stream().next_u64(); }
  double next_double() { return next_stream().next_double(); }
  std::uint64_t next_below(std::uint64_t bound) {
    return next_stream().next_below(bound);
  }

 private:
  Rng& next_stream() { return streams_[pos_++ % BatchRng::kStreams]; }

  std::vector<Rng> streams_;
  std::size_t pos_ = 0;
};

TEST(RngBatchTest, BatchRngU64MatchesReferenceStreams) {
  BatchRng batch(2024);
  BatchReference ref(2024);
  std::vector<std::uint64_t> out(1000);
  batch.fill_u64(out);
  for (std::size_t i = 0; i < out.size(); ++i)
    ASSERT_EQ(out[i], ref.next_u64()) << i;
}

TEST(RngBatchTest, BatchRngOutputIndependentOfCallBoundaries) {
  // Odd chunk sizes, straddling every kind of buffer state the
  // implementation has (partial drain, bulk rows, tail refill).
  const std::array<std::size_t, 7> chunks = {1, 3, 17, 64, 5, 100, 2};
  std::size_t total = 0;
  for (std::size_t c : chunks) total += c;

  BatchRng whole(42);
  std::vector<std::uint64_t> expected(total);
  whole.fill_u64(expected);

  BatchRng pieces(42);
  std::vector<std::uint64_t> got;
  for (std::size_t c : chunks) {
    std::vector<std::uint64_t> part(c);
    pieces.fill_u64(part);
    got.insert(got.end(), part.begin(), part.end());
  }
  ASSERT_EQ(got, expected);
}

TEST(RngBatchTest, BatchRngMixedFillKindsFollowPositionContract) {
  BatchRng batch(7);
  BatchReference ref(7);

  std::vector<std::uint64_t> raw(23);
  batch.fill_u64(raw);
  for (std::size_t i = 0; i < raw.size(); ++i)
    ASSERT_EQ(raw[i], ref.next_u64()) << i;

  std::vector<double> unit(41);
  batch.fill_double(unit);
  for (std::size_t i = 0; i < unit.size(); ++i)
    ASSERT_EQ(bits_of(unit[i]), bits_of(ref.next_double())) << i;

  std::vector<std::uint64_t> bounded(59);
  batch.fill_below(1000, bounded);
  for (std::size_t i = 0; i < bounded.size(); ++i)
    ASSERT_EQ(bounded[i], ref.next_below(1000)) << i;
}

TEST(RngBatchTest, BatchRngFillBelowSurvivesHeavyRejection) {
  // bound just above 2^63: every other raw draw is rejected on average, so
  // the per-stream redraw ordering is thoroughly exercised.
  const std::uint64_t bound = (std::uint64_t{1} << 63) + 1;
  BatchRng batch(99);
  BatchReference ref(99);
  std::vector<std::uint64_t> out(500);
  batch.fill_below(bound, out);
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_LT(out[i], bound);
    ASSERT_EQ(out[i], ref.next_below(bound)) << i;
  }
}

TEST(RngBatchTest, AliasSampleBatchMatchesRepeatedSample) {
  std::vector<double> weights = {0.5, 3.0, 1.25, 0.05, 2.0, 0.7};
  AliasTable table(weights);
  Rng one(13), many(13);
  std::vector<std::size_t> out(400);
  table.sample_batch(many, out);
  for (std::size_t i = 0; i < out.size(); ++i)
    ASSERT_EQ(out[i], table.sample(one)) << i;
  EXPECT_EQ(many.next_u64(), one.next_u64());
}

TEST(RngBatchTest, BootstrapMeanFastPathMatchesGenericBitwise) {
  std::vector<double> data(257);
  Rng rng(1);
  for (auto& v : data) v = rng.normal() * 1e3 + rng.next_double();

  stats::BootstrapOptions opts;
  opts.replicates = 400;
  opts.seed = 17;
  opts.compute_bca = true;

  const auto generic = stats::bootstrap(
      data, [](std::span<const double> x) { return stats::mean(x); }, opts);
  const auto fast = stats::bootstrap_mean(data, opts);

  ASSERT_EQ(fast.replicates.size(), generic.replicates.size());
  for (std::size_t i = 0; i < generic.replicates.size(); ++i)
    ASSERT_EQ(bits_of(fast.replicates[i]), bits_of(generic.replicates[i]))
        << i;
  EXPECT_EQ(bits_of(fast.estimate), bits_of(generic.estimate));
  EXPECT_EQ(bits_of(fast.std_error), bits_of(generic.std_error));
  EXPECT_EQ(bits_of(fast.percentile_ci.lo), bits_of(generic.percentile_ci.lo));
  EXPECT_EQ(bits_of(fast.percentile_ci.hi), bits_of(generic.percentile_ci.hi));
  EXPECT_EQ(bits_of(fast.basic_ci.lo), bits_of(generic.basic_ci.lo));
  EXPECT_EQ(bits_of(fast.basic_ci.hi), bits_of(generic.basic_ci.hi));
  EXPECT_EQ(bits_of(fast.bca_ci.lo), bits_of(generic.bca_ci.lo));
  EXPECT_EQ(bits_of(fast.bca_ci.hi), bits_of(generic.bca_ci.hi));
}

TEST(RngBatchTest, BootstrapMeanFastPathMatchesGenericPooled) {
  std::vector<double> data(300);
  Rng rng(2);
  for (auto& v : data) v = rng.normal();

  parallel::ThreadPool pool(4);
  stats::BootstrapOptions opts;
  opts.replicates = 350;
  opts.seed = 23;
  opts.pool = &pool;

  const auto generic = stats::bootstrap(
      data, [](std::span<const double> x) { return stats::mean(x); }, opts);
  const auto fast = stats::bootstrap_mean(data, opts);
  ASSERT_EQ(fast.replicates.size(), generic.replicates.size());
  for (std::size_t i = 0; i < generic.replicates.size(); ++i)
    ASSERT_EQ(bits_of(fast.replicates[i]), bits_of(generic.replicates[i]))
        << i;
}

TEST(RngBatchTest, BootstrapProportionUsesFastPathBitwise) {
  std::vector<double> data(200);
  Rng rng(3);
  for (auto& v : data) v = rng.bernoulli(0.37) ? 1.0 : 0.0;

  stats::BootstrapOptions opts;
  opts.replicates = 250;
  opts.seed = 29;

  const auto generic = stats::bootstrap(
      data, [](std::span<const double> x) { return stats::mean(x); }, opts);
  const auto prop = stats::bootstrap_proportion(data, opts);
  for (std::size_t i = 0; i < generic.replicates.size(); ++i)
    ASSERT_EQ(bits_of(prop.replicates[i]), bits_of(generic.replicates[i]))
        << i;
  EXPECT_EQ(bits_of(prop.percentile_ci.lo), bits_of(generic.percentile_ci.lo));
  EXPECT_EQ(bits_of(prop.percentile_ci.hi), bits_of(generic.percentile_ci.hi));
}

TEST(RngBatchTest, PermutationMeanDiffFastPathMatchesGenericBitwise) {
  std::vector<double> x(90), y(110);
  Rng rng(4);
  for (auto& v : x) v = rng.normal() * 10.0;
  for (auto& v : y) v = rng.normal() * 10.0 + 1.5;

  stats::PermutationOptions opts;
  opts.permutations = 500;
  opts.seed = 37;

  const auto generic = stats::permutation_test(
      x, y,
      [](std::span<const double> a, std::span<const double> b) {
        return stats::mean(a) - stats::mean(b);
      },
      opts);
  const auto fast = stats::permutation_test_mean_diff(x, y, opts);

  EXPECT_EQ(bits_of(fast.observed), bits_of(generic.observed));
  EXPECT_EQ(bits_of(fast.p_value), bits_of(generic.p_value));
  EXPECT_EQ(bits_of(fast.p_greater), bits_of(generic.p_greater));
  EXPECT_EQ(bits_of(fast.p_less), bits_of(generic.p_less));

  // And the same under a pool.
  parallel::ThreadPool pool(4);
  stats::PermutationOptions pooled_opts = opts;
  pooled_opts.pool = &pool;
  const auto pooled = stats::permutation_test_mean_diff(x, y, pooled_opts);
  EXPECT_EQ(bits_of(pooled.p_value), bits_of(generic.p_value));
  EXPECT_EQ(bits_of(pooled.p_greater), bits_of(generic.p_greater));
  EXPECT_EQ(bits_of(pooled.p_less), bits_of(generic.p_less));
}

}  // namespace
}  // namespace rcr
