#include <gtest/gtest.h>

#include <atomic>
#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "parallel/algorithms.hpp"
#include "parallel/thread_pool.hpp"
#include "util/error.hpp"

namespace rcr::parallel {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 100; ++i)
    tasks.push_back([&counter] { counter.fetch_add(1); });
  pool.run_batch(std::move(tasks));
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, EmptyBatchIsNoop) {
  ThreadPool pool(2);
  EXPECT_NO_THROW(pool.run_batch({}));
}

TEST(ThreadPoolTest, SingleThreadPoolWorks) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 10; ++i)
    tasks.push_back([&counter] { counter.fetch_add(1); });
  pool.run_batch(std::move(tasks));
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, PropagatesTaskException) {
  ThreadPool pool(2);
  std::vector<std::function<void()>> tasks;
  tasks.push_back([] {});
  tasks.push_back([] { throw std::runtime_error("task boom"); });
  tasks.push_back([] {});
  try {
    pool.run_batch(std::move(tasks));
    FAIL() << "expected exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task boom");
  }
}

TEST(ThreadPoolTest, AllTasksStillRunWhenOneThrows) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 50; ++i) {
    tasks.push_back([&counter, i] {
      counter.fetch_add(1);
      if (i == 7) throw std::runtime_error("mid-batch failure");
    });
  }
  EXPECT_THROW(pool.run_batch(std::move(tasks)), std::runtime_error);
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, SequentialBatchesReuseWorkers) {
  ThreadPool pool(3);
  for (int round = 0; round < 10; ++round) {
    std::atomic<int> counter{0};
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 20; ++i)
      tasks.push_back([&counter] { counter.fetch_add(1); });
    pool.run_batch(std::move(tasks));
    EXPECT_EQ(counter.load(), 20);
  }
}

TEST(ThreadPoolTest, DefaultPoolIsSingleton) {
  EXPECT_EQ(&default_pool(), &default_pool());
  EXPECT_GE(default_pool().thread_count(), 1u);
}

// --- parallel_for -------------------------------------------------------------

struct ForCase {
  std::size_t begin, end;
  Schedule schedule;
  std::size_t grain;
};

class ParallelForTest : public ::testing::TestWithParam<ForCase> {};

TEST_P(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  const auto& c = GetParam();
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(c.end);
  for (auto& v : visits) v.store(0);
  parallel_for(
      pool, c.begin, c.end,
      [&](std::size_t i) { visits[i].fetch_add(1); },
      {c.schedule, c.grain});
  for (std::size_t i = 0; i < c.end; ++i)
    EXPECT_EQ(visits[i].load(), i >= c.begin ? 1 : 0) << "index " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ParallelForTest,
    ::testing::Values(ForCase{0, 1, Schedule::kStatic, 0},
                      ForCase{0, 100, Schedule::kStatic, 0},
                      ForCase{0, 100, Schedule::kDynamic, 0},
                      ForCase{5, 7, Schedule::kStatic, 0},
                      ForCase{0, 1000, Schedule::kDynamic, 3},
                      ForCase{0, 1000, Schedule::kStatic, 7},
                      ForCase{10, 10, Schedule::kStatic, 0},
                      ForCase{0, 17, Schedule::kDynamic, 100}));

TEST(ParallelForTest, MatchesSerialSum) {
  ThreadPool pool(4);
  const std::size_t n = 10000;
  std::vector<double> data(n);
  std::iota(data.begin(), data.end(), 0.0);
  std::vector<double> out(n);
  parallel_for(pool, 0, n, [&](std::size_t i) { out[i] = data[i] * 2.0; });
  for (std::size_t i = 0; i < n; ++i) EXPECT_DOUBLE_EQ(out[i], 2.0 * i);
}

TEST(ParallelForTest, RangeBodySeesDisjointCover) {
  ThreadPool pool(4);
  std::mutex m;
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  parallel_for_range(pool, 0, 1003,
                     [&](std::size_t lo, std::size_t hi) {
                       std::lock_guard<std::mutex> lock(m);
                       ranges.push_back({lo, hi});
                     });
  std::sort(ranges.begin(), ranges.end());
  std::size_t expected = 0;
  for (const auto& [lo, hi] : ranges) {
    EXPECT_EQ(lo, expected);
    EXPECT_GT(hi, lo);
    expected = hi;
  }
  EXPECT_EQ(expected, 1003u);
}

TEST(ParallelReduceTest, SumsCorrectly) {
  ThreadPool pool(4);
  const std::size_t n = 100000;
  const double total = parallel_reduce<double>(
      pool, 0, n, 0.0,
      [](std::size_t lo, std::size_t hi) {
        double s = 0.0;
        for (std::size_t i = lo; i < hi; ++i) s += static_cast<double>(i);
        return s;
      },
      [](double a, double b) { return a + b; });
  EXPECT_DOUBLE_EQ(total, static_cast<double>(n) * (n - 1) / 2.0);
}

TEST(ParallelReduceTest, EmptyRangeReturnsInit) {
  ThreadPool pool(2);
  const int v = parallel_reduce<int>(
      pool, 5, 5, 42, [](std::size_t, std::size_t) { return 0; },
      [](int a, int b) { return a + b; });
  EXPECT_EQ(v, 42);
}

TEST(ParallelTransformTest, FillsOutput) {
  ThreadPool pool(4);
  std::vector<int> out(257);
  parallel_transform(pool, out,
                     [](std::size_t i) { return static_cast<int>(i * i); });
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_EQ(out[i], static_cast<int>(i * i));
}

TEST(ParallelForTest, ExceptionInBodyPropagates) {
  ThreadPool pool(4);
  EXPECT_THROW(parallel_for(pool, 0, 100,
                            [](std::size_t i) {
                              if (i == 50) throw rcr::Error("body failed");
                            }),
               rcr::Error);
}

}  // namespace
}  // namespace rcr::parallel
