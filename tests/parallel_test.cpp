#include <gtest/gtest.h>

#include <atomic>
#include <algorithm>
#include <cstring>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "parallel/algorithms.hpp"
#include "parallel/thread_pool.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rcr::parallel {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 100; ++i)
    tasks.push_back([&counter] { counter.fetch_add(1); });
  pool.run_batch(std::move(tasks));
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, EmptyBatchIsNoop) {
  ThreadPool pool(2);
  EXPECT_NO_THROW(pool.run_batch({}));
}

TEST(ThreadPoolTest, SingleThreadPoolWorks) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 10; ++i)
    tasks.push_back([&counter] { counter.fetch_add(1); });
  pool.run_batch(std::move(tasks));
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, PropagatesTaskException) {
  ThreadPool pool(2);
  std::vector<std::function<void()>> tasks;
  tasks.push_back([] {});
  tasks.push_back([] { throw std::runtime_error("task boom"); });
  tasks.push_back([] {});
  try {
    pool.run_batch(std::move(tasks));
    FAIL() << "expected exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task boom");
  }
}

TEST(ThreadPoolTest, AllTasksStillRunWhenOneThrows) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 50; ++i) {
    tasks.push_back([&counter, i] {
      counter.fetch_add(1);
      if (i == 7) throw std::runtime_error("mid-batch failure");
    });
  }
  EXPECT_THROW(pool.run_batch(std::move(tasks)), std::runtime_error);
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, SequentialBatchesReuseWorkers) {
  ThreadPool pool(3);
  for (int round = 0; round < 10; ++round) {
    std::atomic<int> counter{0};
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 20; ++i)
      tasks.push_back([&counter] { counter.fetch_add(1); });
    pool.run_batch(std::move(tasks));
    EXPECT_EQ(counter.load(), 20);
  }
}

TEST(ThreadPoolTest, DefaultPoolIsSingleton) {
  EXPECT_EQ(&default_pool(), &default_pool());
  EXPECT_GE(default_pool().thread_count(), 1u);
}

// Regression for the caller-drain loop: two callers race batches on one
// pool, so each caller may execute tasks belonging to the *other* batch.
// The invariant under test: every batch completes (its remaining reaches
// zero), every task runs exactly once, and an error is rethrown to the
// caller that submitted the failing batch — never to the other one.
TEST(ThreadPoolTest, ConcurrentBatchesKeepSeparateAccounting) {
  ThreadPool pool(2);
#ifndef RCR_OBS_DISABLED
  const auto executed_before =
      rcr::obs::registry().counter("threadpool.tasks.worker").total() +
      rcr::obs::registry().counter("threadpool.tasks.caller").total() +
      rcr::obs::registry().counter("threadpool.tasks.caller_foreign").total();
#endif
  static constexpr int kRounds = 20;
  static constexpr int kTasksPerBatch = 64;
  std::atomic<int> ok_count{0};
  std::atomic<int> bad_count{0};
  std::atomic<int> ok_caller_throws{0};
  std::atomic<int> bad_caller_throws{0};

  for (int round = 0; round < kRounds; ++round) {
    std::thread ok_caller([&] {
      std::vector<std::function<void()>> tasks;
      for (int i = 0; i < kTasksPerBatch; ++i)
        tasks.push_back([&ok_count] { ok_count.fetch_add(1); });
      try {
        pool.run_batch(std::move(tasks));
      } catch (...) {
        ok_caller_throws.fetch_add(1);
      }
    });
    std::thread bad_caller([&] {
      std::vector<std::function<void()>> tasks;
      for (int i = 0; i < kTasksPerBatch; ++i) {
        tasks.push_back([&bad_count, i] {
          bad_count.fetch_add(1);
          if (i == kTasksPerBatch / 2) throw std::runtime_error("bad batch");
        });
      }
      try {
        pool.run_batch(std::move(tasks));
      } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "bad batch");
        bad_caller_throws.fetch_add(1);
      }
    });
    ok_caller.join();
    bad_caller.join();
  }

  EXPECT_EQ(ok_count.load(), kRounds * kTasksPerBatch);
  EXPECT_EQ(bad_count.load(), kRounds * kTasksPerBatch);
  EXPECT_EQ(ok_caller_throws.load(), 0);
  EXPECT_EQ(bad_caller_throws.load(), kRounds);
#ifndef RCR_OBS_DISABLED
  // Every task is executed (and counted) exactly once, whether a worker,
  // its own caller, or the other batch's caller drained it.
  const auto executed_after =
      rcr::obs::registry().counter("threadpool.tasks.worker").total() +
      rcr::obs::registry().counter("threadpool.tasks.caller").total() +
      rcr::obs::registry().counter("threadpool.tasks.caller_foreign").total();
  EXPECT_EQ(executed_after - executed_before,
            static_cast<std::uint64_t>(2 * kRounds * kTasksPerBatch));
#endif
}

// --- parallel_for -------------------------------------------------------------

struct ForCase {
  std::size_t begin, end;
  Schedule schedule;
  std::size_t grain;
};

class ParallelForTest : public ::testing::TestWithParam<ForCase> {};

TEST_P(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  const auto& c = GetParam();
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(c.end);
  for (auto& v : visits) v.store(0);
  parallel_for(
      pool, c.begin, c.end,
      [&](std::size_t i) { visits[i].fetch_add(1); },
      {c.schedule, c.grain});
  for (std::size_t i = 0; i < c.end; ++i)
    EXPECT_EQ(visits[i].load(), i >= c.begin ? 1 : 0) << "index " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ParallelForTest,
    ::testing::Values(ForCase{0, 1, Schedule::kStatic, 0},
                      ForCase{0, 100, Schedule::kStatic, 0},
                      ForCase{0, 100, Schedule::kDynamic, 0},
                      ForCase{5, 7, Schedule::kStatic, 0},
                      ForCase{0, 1000, Schedule::kDynamic, 3},
                      ForCase{0, 1000, Schedule::kStatic, 7},
                      ForCase{10, 10, Schedule::kStatic, 0},
                      ForCase{0, 17, Schedule::kDynamic, 100}));

TEST(ParallelForTest, MatchesSerialSum) {
  ThreadPool pool(4);
  const std::size_t n = 10000;
  std::vector<double> data(n);
  std::iota(data.begin(), data.end(), 0.0);
  std::vector<double> out(n);
  parallel_for(pool, 0, n, [&](std::size_t i) { out[i] = data[i] * 2.0; });
  for (std::size_t i = 0; i < n; ++i) EXPECT_DOUBLE_EQ(out[i], 2.0 * i);
}

TEST(ParallelForTest, RangeBodySeesDisjointCover) {
  ThreadPool pool(4);
  std::mutex m;
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  parallel_for_range(pool, 0, 1003,
                     [&](std::size_t lo, std::size_t hi) {
                       std::lock_guard<std::mutex> lock(m);
                       ranges.push_back({lo, hi});
                     });
  std::sort(ranges.begin(), ranges.end());
  std::size_t expected = 0;
  for (const auto& [lo, hi] : ranges) {
    EXPECT_EQ(lo, expected);
    EXPECT_GT(hi, lo);
    expected = hi;
  }
  EXPECT_EQ(expected, 1003u);
}

// --- parallel_for_chunks ------------------------------------------------------

TEST(ParallelForChunksTest, ChunkIndicesAreStableAcrossSchedules) {
  ThreadPool pool(4);
  const ForOptions base{Schedule::kStatic, 37};
  for (const Schedule schedule : {Schedule::kStatic, Schedule::kDynamic}) {
    ForOptions options = base;
    options.schedule = schedule;
    const std::size_t n_chunks = chunk_count(pool, 0, 1003, options);
    std::mutex m;
    std::vector<std::pair<std::size_t, std::size_t>> by_chunk(n_chunks,
                                                              {0, 0});
    std::vector<int> seen(n_chunks, 0);
    parallel_for_chunks(
        pool, 0, 1003,
        [&](std::size_t chunk, std::size_t lo, std::size_t hi) {
          std::lock_guard<std::mutex> lock(m);
          ASSERT_LT(chunk, n_chunks);
          by_chunk[chunk] = {lo, hi};
          ++seen[chunk];
        },
        options);
    // Every chunk index fires exactly once, bounds tile the range in index
    // order, and sizes are balanced to within one iteration.
    std::size_t expected_lo = 0;
    std::size_t min_size = 1003, max_size = 0;
    for (std::size_t k = 0; k < n_chunks; ++k) {
      EXPECT_EQ(seen[k], 1) << "chunk " << k;
      EXPECT_EQ(by_chunk[k].first, expected_lo) << "chunk " << k;
      const std::size_t size = by_chunk[k].second - by_chunk[k].first;
      min_size = std::min(min_size, size);
      max_size = std::max(max_size, size);
      expected_lo = by_chunk[k].second;
    }
    EXPECT_EQ(expected_lo, 1003u);
    EXPECT_LE(max_size - min_size, 1u);
  }
}

TEST(ParallelForChunksTest, NearEmptyRangeNeverEmitsDegenerateTail) {
  // total = grain + 1 used to produce chunks of [grain, 1]; rebalancing
  // must split it near-evenly instead.
  ThreadPool pool(4);
  for (const Schedule schedule : {Schedule::kStatic, Schedule::kDynamic}) {
    std::mutex m;
    std::vector<std::size_t> sizes;
    parallel_for_range(
        pool, 0, 101,
        [&](std::size_t lo, std::size_t hi) {
          std::lock_guard<std::mutex> lock(m);
          sizes.push_back(hi - lo);
        },
        {schedule, 100});
    ASSERT_EQ(sizes.size(), 2u);
    EXPECT_LE(*std::max_element(sizes.begin(), sizes.end()) -
                  *std::min_element(sizes.begin(), sizes.end()),
              1u);
  }
}

TEST(ParallelForChunksTest, SingleChunkSkipsThePool) {
  ThreadPool pool(4);
  const auto caller = std::this_thread::get_id();
  std::thread::id executed_on;
  std::size_t calls = 0;
  parallel_for_chunks(
      pool, 0, 10,
      [&](std::size_t chunk, std::size_t lo, std::size_t hi) {
        EXPECT_EQ(chunk, 0u);
        EXPECT_EQ(lo, 0u);
        EXPECT_EQ(hi, 10u);
        executed_on = std::this_thread::get_id();
        ++calls;
      },
      {Schedule::kDynamic, 100});
  EXPECT_EQ(calls, 1u);
  EXPECT_EQ(executed_on, caller);
}

TEST(ParallelReduceTest, SumsCorrectly) {
  ThreadPool pool(4);
  const std::size_t n = 100000;
  const double total = parallel_reduce<double>(
      pool, 0, n, 0.0,
      [](std::size_t lo, std::size_t hi) {
        double s = 0.0;
        for (std::size_t i = lo; i < hi; ++i) s += static_cast<double>(i);
        return s;
      },
      [](double a, double b) { return a + b; });
  EXPECT_DOUBLE_EQ(total, static_cast<double>(n) * (n - 1) / 2.0);
}

// The reproducibility contract (DESIGN.md): floating-point reductions are
// bitwise identical run-to-run and across pool sizes. The pre-fix code
// folded partials in completion order, which fails this under any real
// scheduling jitter.
TEST(ParallelReduceTest, BitwiseDeterministicAcrossRunsAndPoolSizes) {
  const std::size_t n = 200000;
  std::vector<double> data(n);
  rcr::Rng rng(123);
  for (auto& v : data) v = rng.next_double() * 2.0 - 1.0;

  const auto sum_with = [&](ThreadPool& pool) {
    return parallel_reduce<double>(
        pool, 0, n, 0.0,
        [&](std::size_t lo, std::size_t hi) {
          double s = 0.0;
          for (std::size_t i = lo; i < hi; ++i) s += data[i];
          return s;
        },
        [](double a, double b) { return a + b; });
  };

  ThreadPool pool1(1);
  const double reference = sum_with(pool1);
  std::uint64_t reference_bits = 0;
  std::memcpy(&reference_bits, &reference, sizeof(reference));

  for (const std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    for (int run = 0; run < 3; ++run) {
      const double sum = sum_with(pool);
      std::uint64_t bits = 0;
      std::memcpy(&bits, &sum, sizeof(sum));
      EXPECT_EQ(bits, reference_bits)
          << "threads=" << threads << " run=" << run;
    }
  }
}

TEST(ParallelReduceTest, EmptyRangeReturnsInit) {
  ThreadPool pool(2);
  const int v = parallel_reduce<int>(
      pool, 5, 5, 42, [](std::size_t, std::size_t) { return 0; },
      [](int a, int b) { return a + b; });
  EXPECT_EQ(v, 42);
}

TEST(ParallelTransformTest, FillsOutput) {
  ThreadPool pool(4);
  std::vector<int> out(257);
  parallel_transform(pool, out,
                     [](std::size_t i) { return static_cast<int>(i * i); });
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_EQ(out[i], static_cast<int>(i * i));
}

TEST(ParallelForTest, ExceptionInBodyPropagates) {
  ThreadPool pool(4);
  EXPECT_THROW(parallel_for(pool, 0, 100,
                            [](std::size_t i) {
                              if (i == 50) throw rcr::Error("body failed");
                            }),
               rcr::Error);
}

}  // namespace
}  // namespace rcr::parallel
