#include <gtest/gtest.h>

#include <cmath>

#include "sim/cluster.hpp"
#include "sim/scaling.hpp"
#include "util/error.hpp"

namespace rcr::sim {
namespace {

// --- analytic scaling model -----------------------------------------------------

TEST(AmdahlTest, KnownValues) {
  EXPECT_DOUBLE_EQ(amdahl_speedup(0.0, 8), 8.0);
  EXPECT_NEAR(amdahl_speedup(0.1, 8), 1.0 / (0.1 + 0.9 / 8.0), 1e-12);
  // Asymptote: 1/f.
  EXPECT_NEAR(amdahl_speedup(0.05, 1000000), 20.0, 0.01);
  EXPECT_DOUBLE_EQ(amdahl_speedup(1.0, 64), 1.0);
}

TEST(GustafsonTest, KnownValues) {
  EXPECT_DOUBLE_EQ(gustafson_speedup(0.0, 16), 16.0);
  EXPECT_DOUBLE_EQ(gustafson_speedup(0.5, 16), 16.0 - 0.5 * 15.0);
  EXPECT_DOUBLE_EQ(gustafson_speedup(1.0, 16), 1.0);
}

MachineModel test_machine() {
  MachineModel m;
  m.core_gflops = 1.0;  // 1e9 ops/s: easy mental math
  m.mem_bandwidth_gbs = 10.0;
  m.barrier_latency_us = 5.0;
  return m;
}

TEST(PredictTimeTest, SerialBaselineIsWorkOverThroughput) {
  WorkloadModel w;
  w.work_ops = 2e9;
  w.serial_fraction = 0.0;
  w.bytes_per_flop = 0.0;
  w.barriers = 0;
  EXPECT_NEAR(predict_time(test_machine(), w, 1), 2.0, 1e-12);
  EXPECT_NEAR(predict_time(test_machine(), w, 4), 0.5, 1e-12);
}

TEST(PredictTimeTest, SerialFractionCapsSpeedup) {
  WorkloadModel w;
  w.work_ops = 1e9;
  w.serial_fraction = 0.2;
  w.barriers = 0;
  const double t1 = predict_time(test_machine(), w, 1);
  const double t_inf = predict_time(test_machine(), w, 1 << 20);
  EXPECT_NEAR(t1 / t_inf, 5.0, 0.01);  // 1/f = 5
}

TEST(PredictTimeTest, BandwidthCeilingBinds) {
  WorkloadModel w;
  w.work_ops = 1e9;
  w.serial_fraction = 0.0;
  w.bytes_per_flop = 100.0;  // 100 GB moved, bw 10 GB/s -> >= 10 s
  w.barriers = 0;
  EXPECT_NEAR(predict_time(test_machine(), w, 64), 10.0, 1e-9);
  // Ablation without the bandwidth term is much faster (and wrong).
  ModelAblation no_bw;
  no_bw.include_bandwidth = false;
  EXPECT_LT(predict_time_ablated(test_machine(), w, 64, no_bw), 0.1);
}

TEST(PredictTimeTest, BarrierCostGrowsWithCores) {
  WorkloadModel w;
  w.work_ops = 1e6;
  w.serial_fraction = 0.0;
  w.barriers = 100;
  const double t2 = predict_time(test_machine(), w, 2);
  const double t64 = predict_time(test_machine(), w, 64);
  ModelAblation no_barrier;
  no_barrier.include_barriers = false;
  const double t64_nb = predict_time_ablated(test_machine(), w, 64,
                                             no_barrier);
  EXPECT_GT(t64, t64_nb);
  EXPECT_GT(t64 - t64_nb, t2 - predict_time_ablated(test_machine(), w, 2,
                                                    no_barrier));
}

class MonotoneScalingTest : public ::testing::TestWithParam<double> {};

TEST_P(MonotoneScalingTest, ComputeTimeNeverIncreasesWithoutBarriers) {
  WorkloadModel w;
  w.work_ops = 5e9;
  w.serial_fraction = GetParam();
  w.bytes_per_flop = 1.0;
  w.barriers = 0;  // barrier cost is the only non-monotone term
  double prev = predict_time(test_machine(), w, 1);
  for (std::size_t p = 2; p <= 1024; p *= 2) {
    const double cur = predict_time(test_machine(), w, p);
    EXPECT_LE(cur, prev + 1e-12) << "p=" << p;
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Fractions, MonotoneScalingTest,
                         ::testing::Values(0.0, 0.01, 0.1, 0.5, 1.0));

TEST(ScalingCurveTest, SpeedupAndEfficiencyConsistent) {
  WorkloadModel w;
  w.work_ops = 1e9;
  w.serial_fraction = 0.05;
  const std::vector<std::size_t> cores = {1, 2, 4, 8};
  const auto curve = strong_scaling_curve(test_machine(), w, cores);
  ASSERT_EQ(curve.size(), 4u);
  EXPECT_DOUBLE_EQ(curve[0].speedup, 1.0);
  for (const auto& pt : curve)
    EXPECT_NEAR(pt.efficiency, pt.speedup / pt.cores, 1e-12);
}

TEST(PredictTimeTest, RejectsBadInputs) {
  WorkloadModel w;
  EXPECT_THROW(predict_time(test_machine(), w, 0), rcr::Error);
  w.serial_fraction = 1.5;
  EXPECT_THROW(predict_time(test_machine(), w, 1), rcr::Error);
  MachineModel bad = test_machine();
  bad.core_gflops = 0.0;
  EXPECT_THROW(predict_time(bad, WorkloadModel{}, 1), rcr::Error);
}

// --- discrete-event fork-join ----------------------------------------------------

TEST(ForkJoinTest, SingleCoreSumsDurations) {
  const std::vector<double> tasks = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(simulate_fork_join(tasks, 1), 6.0);
}

TEST(ForkJoinTest, PerfectSplitAcrossCores) {
  const std::vector<double> tasks(8, 1.0);
  EXPECT_DOUBLE_EQ(simulate_fork_join(tasks, 4), 2.0);
  EXPECT_DOUBLE_EQ(simulate_fork_join(tasks, 8), 1.0);
  // More cores than tasks: bounded by the longest task.
  EXPECT_DOUBLE_EQ(simulate_fork_join(tasks, 100), 1.0);
}

TEST(ForkJoinTest, ImbalanceDominates) {
  const std::vector<double> tasks = {10.0, 1.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(simulate_fork_join(tasks, 4), 10.0);
  // Greedy list scheduling on 2 cores: 10 | 1+1+1 -> makespan 10.
  EXPECT_DOUBLE_EQ(simulate_fork_join(tasks, 2), 10.0);
}

TEST(ForkJoinTest, SerialAndBarrierAdded) {
  const std::vector<double> tasks = {1.0, 1.0};
  EXPECT_DOUBLE_EQ(simulate_fork_join(tasks, 2, 0.5, 0.25), 1.75);
}

TEST(ForkJoinTest, AgreesWithAnalyticModelWithoutJitter) {
  const auto machine = test_machine();
  WorkloadModel w;
  w.work_ops = 4e9;
  w.serial_fraction = 0.1;
  w.barriers = 0;
  for (std::size_t p : {1, 2, 4, 16}) {
    const auto tasks = make_task_durations(machine, w, p);  // p equal tasks
    const double serial_s = w.serial_fraction * w.work_ops / 1e9;
    const double des = simulate_fork_join(tasks, p, serial_s);
    const double analytic = predict_time(machine, w, p);
    EXPECT_NEAR(des, analytic, analytic * 1e-9) << "p=" << p;
  }
}

TEST(ForkJoinTest, JitterIsDeterministicAndBounded) {
  const auto machine = test_machine();
  WorkloadModel w;
  w.work_ops = 1e9;
  const auto a = make_task_durations(machine, w, 64, 0.3, 5);
  const auto b = make_task_durations(machine, w, 64, 0.3, 5);
  EXPECT_EQ(a, b);
  const double base = (1.0 - w.serial_fraction) * 1.0 / 64.0;
  for (double d : a) {
    EXPECT_GE(d, base * 0.699);
    EXPECT_LE(d, base * 1.301);
  }
}

TEST(ForkJoinTest, RejectsBadInput) {
  EXPECT_THROW(simulate_fork_join(std::vector<double>{1.0}, 0), rcr::Error);
  EXPECT_THROW(simulate_fork_join(std::vector<double>{-1.0}, 1), rcr::Error);
}

// Brute-force reference scheduler: the core-free times as a plain array,
// each task assigned by a linear scan for the minimum. Same greedy policy
// the heap implements — but independent code, so the property test below
// catches any heap bookkeeping slip (the "more cores than tasks" branch
// the heap path once carried was unreachable precisely because the heap
// is seeded with min(cores, tasks) slots; this reference pins the
// behavior that branch claimed to handle).
double brute_force_list_schedule(const std::vector<double>& tasks,
                                 std::size_t cores) {
  std::vector<double> free_at(std::min(cores, tasks.size()), 0.0);
  double makespan = 0.0;
  for (double d : tasks) {
    std::size_t best = 0;
    for (std::size_t c = 1; c < free_at.size(); ++c)
      if (free_at[c] < free_at[best]) best = c;
    free_at[best] += d;
    makespan = std::max(makespan, free_at[best]);
  }
  return makespan;
}

TEST(ForkJoinTest, MatchesBruteForceScheduleOnRandomTaskSets) {
  // Deterministic pseudo-random task sets: sizes crossing the task/core
  // boundary in both directions, including the tasks < cores regime the
  // removed dead branch claimed to serve.
  std::uint64_t state = 12345;
  const auto next = [&state] {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>(state >> 40) / static_cast<double>(1 << 24);
  };
  for (std::size_t n : {1u, 3u, 7u, 16u, 61u}) {
    for (std::size_t cores : {1u, 2u, 5u, 16u, 64u}) {
      std::vector<double> tasks(n);
      for (double& d : tasks) d = next() * 10.0;
      const double expected = brute_force_list_schedule(tasks, cores);
      EXPECT_DOUBLE_EQ(simulate_fork_join(tasks, cores), expected)
          << "n=" << n << " cores=" << cores;
    }
  }
}

TEST(ForkJoinTest, MoreCoresThanTasksIsBoundedByLongestTask) {
  // tasks <= cores: every task starts at 0 on its own core, so the
  // parallel phase is exactly max(duration) and the overheads add on top.
  const std::vector<double> tasks = {0.5, 2.5, 1.0};
  EXPECT_DOUBLE_EQ(simulate_fork_join(tasks, 3), 2.5);
  EXPECT_DOUBLE_EQ(simulate_fork_join(tasks, 1000), 2.5);
  EXPECT_DOUBLE_EQ(simulate_fork_join(tasks, 8, 0.25, 0.125), 2.875);
  // Empty task list: just the serial and barrier terms.
  EXPECT_DOUBLE_EQ(simulate_fork_join(std::vector<double>{}, 4, 1.5, 0.5),
                   2.0);
}

// --- cluster queueing -------------------------------------------------------------

JobStreamConfig light_config() {
  JobStreamConfig c;
  c.jobs = 300;
  c.arrival_rate_per_hour = 6.0;   // light load
  c.runtime_log_mu = 6.0;          // ~7 min median
  c.runtime_log_sigma = 1.0;
  c.max_cores = 64;
  c.seed = 5;
  return c;
}

TEST(JobStreamTest, GeneratedStreamIsSane) {
  const auto jobs = generate_job_stream(light_config());
  ASSERT_EQ(jobs.size(), 300u);
  double prev = 0.0;
  for (const auto& j : jobs) {
    EXPECT_GE(j.submit_time, prev);
    prev = j.submit_time;
    EXPECT_GE(j.cores, 1u);
    EXPECT_LE(j.cores, 64u);
    // Power-of-two widths.
    EXPECT_EQ(j.cores & (j.cores - 1), 0u);
    EXPECT_GT(j.runtime, 0.0);
  }
}

TEST(ClusterTest, EveryJobRunsAndMetricsConsistent) {
  auto jobs = generate_job_stream(light_config());
  const auto m = simulate_cluster(jobs, 128, SchedulerPolicy::kFcfs);
  EXPECT_EQ(m.jobs, jobs.size());
  for (const auto& j : jobs) EXPECT_GE(j.start_time, j.submit_time);
  EXPECT_GE(m.mean_wait, 0.0);
  EXPECT_LE(m.median_wait, m.p95_wait);
  EXPECT_LE(m.p95_wait, m.max_wait + 1e-9);
  EXPECT_GT(m.utilization, 0.0);
  EXPECT_LE(m.utilization, 1.0 + 1e-9);
  EXPECT_GE(m.mean_bounded_slowdown, 1.0);
}

TEST(ClusterTest, LightLoadMeansNearZeroWait) {
  auto cfg = light_config();
  cfg.arrival_rate_per_hour = 1.0;
  auto jobs = generate_job_stream(cfg);
  const auto m = simulate_cluster(jobs, 512, SchedulerPolicy::kFcfs);
  EXPECT_LT(m.median_wait, 1.0);  // essentially no queueing
}

TEST(ClusterTest, HeavierLoadMeansLongerWaits) {
  auto cfg = light_config();
  cfg.jobs = 600;
  cfg.arrival_rate_per_hour = 8.0;
  auto light = generate_job_stream(cfg);
  const auto m_light = simulate_cluster(light, 96, SchedulerPolicy::kFcfs);
  cfg.arrival_rate_per_hour = 80.0;
  auto heavy = generate_job_stream(cfg);
  const auto m_heavy = simulate_cluster(heavy, 96, SchedulerPolicy::kFcfs);
  EXPECT_GT(m_heavy.mean_wait, m_light.mean_wait);
  EXPECT_GT(m_heavy.utilization, m_light.utilization);
}

TEST(ClusterTest, BackfillDoesNotHurtMeanWait) {
  auto cfg = light_config();
  cfg.jobs = 800;
  cfg.arrival_rate_per_hour = 40.0;
  auto a = generate_job_stream(cfg);
  auto b = a;  // identical trace
  const auto fcfs = simulate_cluster(a, 128, SchedulerPolicy::kFcfs);
  const auto easy = simulate_cluster(b, 128, SchedulerPolicy::kEasyBackfill);
  EXPECT_LE(easy.mean_wait, fcfs.mean_wait * 1.02 + 1.0);
  // Both policies run everything.
  EXPECT_EQ(fcfs.jobs, easy.jobs);
}

TEST(ClusterTest, FcfsPreservesStartOrder) {
  auto jobs = generate_job_stream(light_config());
  simulate_cluster(jobs, 128, SchedulerPolicy::kFcfs);
  // Under FCFS with homogeneous capacity, start times are non-decreasing in
  // submit order only when widths fit; weaker invariant: a job never starts
  // before an earlier-submitted job that was already startable... checking
  // the simple sanity version: sorted submit order has sorted start for
  // equal-width neighbours.
  for (std::size_t i = 1; i < jobs.size(); ++i) {
    if (jobs[i].cores == jobs[i - 1].cores) {
      EXPECT_GE(jobs[i].start_time, jobs[i - 1].start_time - 1e-9);
    }
  }
}

TEST(ClusterTest, RejectsOversizedJob) {
  std::vector<Job> jobs = {{0.0, 100, 10.0, -1.0}};
  EXPECT_THROW(simulate_cluster(jobs, 64, SchedulerPolicy::kFcfs),
               rcr::Error);
  std::vector<Job> empty;
  EXPECT_THROW(simulate_cluster(empty, 64, SchedulerPolicy::kFcfs),
               rcr::Error);
}

TEST(SchedulerLabelTest, Labels) {
  EXPECT_STREQ(scheduler_label(SchedulerPolicy::kFcfs), "FCFS");
  EXPECT_STREQ(scheduler_label(SchedulerPolicy::kEasyBackfill),
               "EASY-backfill");
}

}  // namespace
}  // namespace rcr::sim
