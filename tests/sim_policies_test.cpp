// Tests for the simulator extensions: SJF scheduling and weak scaling.
#include <gtest/gtest.h>

#include <vector>

#include "sim/cluster.hpp"
#include "sim/scaling.hpp"
#include "util/error.hpp"

namespace rcr::sim {
namespace {

TEST(SjfTest, LabelAndBasicRun) {
  EXPECT_STREQ(scheduler_label(SchedulerPolicy::kShortestFirst), "SJF");
  JobStreamConfig cfg;
  cfg.jobs = 400;
  cfg.arrival_rate_per_hour = 30.0;
  cfg.max_cores = 64;
  cfg.seed = 11;
  auto jobs = generate_job_stream(cfg);
  const auto m = simulate_cluster(jobs, 128, SchedulerPolicy::kShortestFirst);
  EXPECT_EQ(m.jobs, jobs.size());
  for (const auto& j : jobs) EXPECT_GE(j.start_time, j.submit_time);
}

TEST(SjfTest, ShortJobJumpsLongQueue) {
  // One long job occupies the machine; a long and then a short job queue
  // behind it. SJF starts the short one first.
  std::vector<Job> jobs = {
      {0.0, 4, 1000.0, -1.0},   // hog: takes the whole cluster
      {1.0, 4, 500.0, -1.0},    // long waiter (earlier submit)
      {2.0, 4, 10.0, -1.0},     // short waiter (later submit)
  };
  auto fcfs = jobs;
  simulate_cluster(fcfs, 4, SchedulerPolicy::kFcfs);
  EXPECT_LT(fcfs[1].start_time, fcfs[2].start_time);  // FCFS keeps order

  auto sjf = jobs;
  simulate_cluster(sjf, 4, SchedulerPolicy::kShortestFirst);
  EXPECT_LT(sjf[2].start_time, sjf[1].start_time);  // SJF reorders
}

TEST(SjfTest, ImprovesBoundedSlowdownUnderLoad) {
  JobStreamConfig cfg;
  cfg.jobs = 800;
  cfg.arrival_rate_per_hour = 60.0;
  cfg.max_cores = 64;
  cfg.seed = 13;
  auto a = generate_job_stream(cfg);
  auto b = a;
  const auto fcfs = simulate_cluster(a, 96, SchedulerPolicy::kFcfs);
  const auto sjf = simulate_cluster(b, 96, SchedulerPolicy::kShortestFirst);
  // SJF optimizes exactly this metric (short jobs stop waiting behind
  // long ones); allow equality for light stretches.
  EXPECT_LE(sjf.mean_bounded_slowdown, fcfs.mean_bounded_slowdown + 1e-9);
}

TEST(WeakScalingTest, IdealWorkloadHoldsTimeFlat) {
  MachineModel m;
  m.core_gflops = 1.0;
  m.barrier_latency_us = 0.0;
  WorkloadModel per_core;
  per_core.work_ops = 1e9;
  per_core.serial_fraction = 0.0;
  per_core.bytes_per_flop = 0.0;
  per_core.barriers = 0;
  const std::vector<std::size_t> cores = {1, 2, 4, 8, 16};
  const auto curve = weak_scaling_curve(m, per_core, cores);
  ASSERT_EQ(curve.size(), cores.size());
  for (const auto& pt : curve) {
    EXPECT_NEAR(pt.time_seconds, 1.0, 1e-12);
    EXPECT_NEAR(pt.efficiency, 1.0, 1e-12);
  }
}

TEST(WeakScalingTest, SerialFractionDegradesEfficiency) {
  MachineModel m;
  m.core_gflops = 1.0;
  m.barrier_latency_us = 0.0;
  WorkloadModel per_core;
  per_core.work_ops = 1e9;
  per_core.serial_fraction = 0.1;
  per_core.barriers = 0;
  const std::vector<std::size_t> cores = {1, 4, 16, 64};
  const auto curve = weak_scaling_curve(m, per_core, cores);
  double prev_eff = 2.0;
  for (const auto& pt : curve) {
    EXPECT_LT(pt.efficiency, prev_eff);
    prev_eff = pt.efficiency;
  }
  // Serial part grows with total work: time at 64 cores ≈
  // 0.1*64 + 0.9 seconds.
  EXPECT_NEAR(curve.back().time_seconds, 0.1 * 64.0 + 0.9, 1e-9);
}

TEST(WeakScalingTest, HandComputedScaledTime) {
  // Our model keeps the serial *fraction* of the scaled problem, so the
  // serial term grows with p (a pessimistic stance vs Gustafson's fixed
  // serial time). For per-core work 0.25 s at f = 0.2 on 8 cores:
  //   total = 2 s of work; t = 0.2*2 + 0.8*2/8 = 0.6 s;
  //   scaled speedup = 8 * 0.25 / 0.6 = 10/3, well below Gustafson's 6.6.
  MachineModel m;
  m.core_gflops = 2.0;
  m.barrier_latency_us = 0.0;
  WorkloadModel per_core;
  per_core.work_ops = 5e8;  // 0.25 s at 2 Gop/s
  per_core.serial_fraction = 0.2;
  per_core.barriers = 0;
  const std::vector<std::size_t> cores = {8};
  const auto curve = weak_scaling_curve(m, per_core, cores);
  EXPECT_NEAR(curve[0].time_seconds, 0.6, 1e-12);
  const double t1 = predict_time(m, per_core, 1);
  const double scaled_speedup = 8.0 * t1 / curve[0].time_seconds;
  EXPECT_NEAR(scaled_speedup, 10.0 / 3.0, 1e-9);
  EXPECT_LT(scaled_speedup, gustafson_speedup(0.2, 8));
}

}  // namespace
}  // namespace rcr::sim
