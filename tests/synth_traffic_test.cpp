// Traffic distribution contract: ZipfSampler and exponential_interarrival
// are inverse-CDF transforms of a caller-supplied uniform draw, so their
// empirical moments under a fixed-seed generator must match the closed
// forms — E[rank] from the normalized pmf for Zipf, mean 1/lambda and
// variance 1/lambda^2 for the exponential — and identical draw sequences
// must produce identical samples (no internal state, no rejection loops).
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "simd/philox.hpp"
#include "synth/traffic.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rcr::synth {
namespace {

TEST(ZipfSamplerTest, ValidatesParameters) {
  EXPECT_THROW(ZipfSampler(0, 1.0), Error);
  EXPECT_THROW(ZipfSampler(10, -0.5), Error);
  EXPECT_NO_THROW(ZipfSampler(1, 0.0));
  EXPECT_NO_THROW(ZipfSampler(1000, 2.5));
}

TEST(ZipfSamplerTest, PmfNormalizesAndFollowsPowerLaw) {
  const double s = 1.2;
  const ZipfSampler zipf(50, s);
  double total = 0.0;
  for (std::size_t k = 0; k < zipf.size(); ++k) total += zipf.probability(k);
  EXPECT_NEAR(total, 1.0, 1e-12);
  // P(k) is proportional to (k+1)^-s: successive ratios are exact in the
  // closed form up to normalization rounding.
  EXPECT_NEAR(zipf.probability(0) / zipf.probability(1), std::pow(2.0, s),
              1e-9);
  EXPECT_NEAR(zipf.probability(2) / zipf.probability(5), std::pow(2.0, s),
              1e-9);
  EXPECT_GT(zipf.probability(0), zipf.probability(49));
}

TEST(ZipfSamplerTest, SkewZeroDegeneratesToUniform) {
  const ZipfSampler zipf(8, 0.0);
  for (std::size_t k = 0; k < 8; ++k) {
    EXPECT_NEAR(zipf.probability(k), 1.0 / 8.0, 1e-12);
  }
  // The inverse CDF then splits [0, 1) into equal slices.
  EXPECT_EQ(zipf.sample(0.0), 0u);
  EXPECT_EQ(zipf.sample(0.1249), 0u);
  EXPECT_EQ(zipf.sample(0.1251), 1u);
  EXPECT_EQ(zipf.sample(0.9999), 7u);
}

TEST(ZipfSamplerTest, SampleIsMonotoneWithHeadOwningLowSlice) {
  const ZipfSampler zipf(100, 1.0);
  EXPECT_EQ(zipf.sample(0.0), 0u);
  EXPECT_EQ(zipf.sample(std::nextafter(1.0, 0.0)), 99u);
  std::size_t prev = 0;
  for (double u = 0.0; u < 1.0; u += 0.001) {
    const std::size_t k = zipf.sample(u);
    EXPECT_GE(k, prev);
    EXPECT_LT(k, 100u);
    prev = k;
  }
}

TEST(ZipfSamplerTest, EmpiricalMomentsMatchClosedFormWithFixedSeed) {
  const ZipfSampler zipf(200, 1.1);
  // Closed-form mean and variance from the normalized pmf.
  const double mean = zipf.mean_rank();
  double second = 0.0;
  for (std::size_t k = 0; k < zipf.size(); ++k) {
    second += static_cast<double>(k) * static_cast<double>(k) *
              zipf.probability(k);
  }
  const double var = second - mean * mean;

  constexpr std::size_t kDraws = 200000;
  Rng rng(4242);
  double sum = 0.0;
  std::vector<std::uint64_t> head_hits(1, 0);
  for (std::size_t i = 0; i < kDraws; ++i) {
    const std::size_t k = zipf.sample(rng.next_double());
    sum += static_cast<double>(k);
    if (k == 0) ++head_hits[0];
  }
  const double empirical_mean = sum / static_cast<double>(kDraws);
  // 4-sigma band on the mean of kDraws iid ranks.
  const double tol = 4.0 * std::sqrt(var / static_cast<double>(kDraws));
  EXPECT_NEAR(empirical_mean, mean, tol);

  // Head frequency against P(0), 4-sigma binomial band.
  const double p0 = zipf.probability(0);
  const double head_tol =
      4.0 * std::sqrt(p0 * (1.0 - p0) / static_cast<double>(kDraws));
  EXPECT_NEAR(static_cast<double>(head_hits[0]) / kDraws, p0, head_tol);
}

TEST(ExponentialInterarrivalTest, ValidatesAndPinsEdges) {
  EXPECT_THROW(exponential_interarrival(0.0, 0.5), Error);
  EXPECT_THROW(exponential_interarrival(-2.0, 0.5), Error);
  EXPECT_DOUBLE_EQ(exponential_interarrival(3.0, 0.0), 0.0);
  // Median of Exp(lambda) is ln(2)/lambda, hit exactly at u = 0.5.
  EXPECT_NEAR(exponential_interarrival(2.0, 0.5), std::log(2.0) / 2.0, 1e-15);
  // Monotone in the draw.
  EXPECT_LT(exponential_interarrival(1.0, 0.3),
            exponential_interarrival(1.0, 0.7));
}

TEST(ExponentialInterarrivalTest, MomentsMatchClosedFormWithFixedSeed) {
  const double lambda = 4.0;
  constexpr std::size_t kDraws = 200000;
  Rng rng(777);
  double sum = 0.0, sum_sq = 0.0;
  for (std::size_t i = 0; i < kDraws; ++i) {
    const double gap = exponential_interarrival(lambda, rng.next_double());
    EXPECT_GE(gap, 0.0);
    sum += gap;
    sum_sq += gap * gap;
  }
  const double mean = sum / kDraws;
  const double var = sum_sq / kDraws - mean * mean;
  // Exp(lambda): mean 1/lambda (sd of the sample mean is
  // 1/(lambda sqrt(N))), variance 1/lambda^2.
  EXPECT_NEAR(mean, 1.0 / lambda, 4.0 / (lambda * std::sqrt(kDraws)));
  EXPECT_NEAR(var, 1.0 / (lambda * lambda), 0.05 / (lambda * lambda));
}

TEST(PoissonSamplerTest, ValidatesParameters) {
  EXPECT_THROW(PoissonSampler(0.0), Error);
  EXPECT_THROW(PoissonSampler(-1.0), Error);
  EXPECT_THROW(PoissonSampler(1e9), Error);  // e^-lambda underflows
  EXPECT_NO_THROW(PoissonSampler(0.01));
  EXPECT_NO_THROW(PoissonSampler(100.0));
}

TEST(PoissonSamplerTest, PmfNormalizesAndPinsClosedForm) {
  const double lambda = 3.5;
  const PoissonSampler poisson(lambda);
  EXPECT_DOUBLE_EQ(poisson.probability(0), std::exp(-lambda));
  // P(k)/P(k-1) = lambda/k, exactly how the walk builds the pmf.
  EXPECT_NEAR(poisson.probability(4) / poisson.probability(3), lambda / 4.0,
              1e-12);
  double total = 0.0;
  for (std::size_t k = 0; k <= 60; ++k) total += poisson.probability(k);
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(poisson.mean(), lambda);
  EXPECT_DOUBLE_EQ(poisson.variance(), lambda);
}

TEST(PoissonSamplerTest, SampleIsMonotoneInverseCdf) {
  const PoissonSampler poisson(2.0);
  // u below P(0) = e^-2 yields 0; the CDF boundaries map exactly.
  EXPECT_EQ(poisson.sample(0.0), 0u);
  EXPECT_EQ(poisson.sample(std::exp(-2.0) - 1e-9), 0u);
  EXPECT_EQ(poisson.sample(std::exp(-2.0) + 1e-9), 1u);
  std::size_t prev = 0;
  for (double u = 0.0; u < 1.0; u += 0.0005) {
    const std::size_t k = poisson.sample(u);
    EXPECT_GE(k, prev);
    prev = k;
  }
}

TEST(PoissonSamplerTest, MomentsMatchClosedFormWithFixedSeed) {
  const double lambda = 6.0;
  const PoissonSampler poisson(lambda);
  constexpr std::size_t kDraws = 200000;
  Rng rng(31337);
  double sum = 0.0, sum_sq = 0.0;
  for (std::size_t i = 0; i < kDraws; ++i) {
    const double k = static_cast<double>(poisson.sample(rng.next_double()));
    sum += k;
    sum_sq += k * k;
  }
  const double mean = sum / kDraws;
  const double var = sum_sq / kDraws - mean * mean;
  // Poisson(lambda): mean lambda, variance lambda; 4-sigma band on the
  // sample mean of kDraws iid counts.
  EXPECT_NEAR(mean, lambda, 4.0 * std::sqrt(lambda / kDraws));
  EXPECT_NEAR(var, lambda, 0.05 * lambda);
}

TEST(LogUniformTest, ValidatesAndPinsEdges) {
  EXPECT_THROW(log_uniform(0.0, 10.0, 0.5), Error);
  EXPECT_THROW(log_uniform(-1.0, 10.0, 0.5), Error);
  EXPECT_THROW(log_uniform(5.0, 5.0, 0.5), Error);
  EXPECT_THROW(log_uniform(10.0, 2.0, 0.5), Error);
  EXPECT_DOUBLE_EQ(log_uniform(2.0, 32.0, 0.0), 2.0);
  // u = 0.5 lands on the geometric midpoint sqrt(lo * hi).
  EXPECT_NEAR(log_uniform(2.0, 32.0, 0.5), 8.0, 1e-12);
  // Monotone in the draw and bounded by [lo, hi).
  EXPECT_LT(log_uniform(1.0, 100.0, 0.2), log_uniform(1.0, 100.0, 0.8));
  EXPECT_LT(log_uniform(1.0, 100.0, std::nextafter(1.0, 0.0)), 100.0);
}

TEST(LogUniformTest, MomentsMatchClosedFormWithFixedSeed) {
  const double lo = 1.0, hi = 1000.0;
  constexpr std::size_t kDraws = 200000;
  Rng rng(8081);
  double sum = 0.0, sum_log = 0.0, sum_log_sq = 0.0;
  for (std::size_t i = 0; i < kDraws; ++i) {
    const double v = log_uniform(lo, hi, rng.next_double());
    EXPECT_GE(v, lo);
    EXPECT_LT(v, hi);
    sum += v;
    const double lv = std::log(v);
    sum_log += lv;
    sum_log_sq += lv * lv;
  }
  // Closed-form mean (hi - lo) / log(hi / lo); the value's variance is
  // large, so band the mean at 4 sigma of the sample mean using the
  // closed-form second moment (hi^2 - lo^2) / (2 log(hi / lo)).
  const double span = std::log(hi / lo);
  const double mean = (hi - lo) / span;
  const double second = (hi * hi - lo * lo) / (2.0 * span);
  const double sd_mean = std::sqrt((second - mean * mean) / kDraws);
  EXPECT_NEAR(sum / kDraws, mean, 4.0 * sd_mean);
  // log(v) is uniform on [log lo, log hi): mean span/2 (lo = 1 makes
  // log lo = 0), variance span^2/12.
  const double log_var = span * span / 12.0;
  EXPECT_NEAR(sum_log / kDraws, span / 2.0,
              4.0 * std::sqrt(log_var / kDraws));
  EXPECT_NEAR(sum_log_sq / kDraws - (sum_log / kDraws) * (sum_log / kDraws),
              log_var, 0.05 * log_var);
}

TEST(BetaSamplerTest, ValidatesParameters) {
  EXPECT_THROW(BetaSampler(0.0, 1.0), Error);
  EXPECT_THROW(BetaSampler(1.0, -2.0), Error);
  EXPECT_THROW(BetaSampler(2.0, 5.0).sample(1.0), Error);
  EXPECT_THROW(BetaSampler(2.0, 5.0).sample(-0.1), Error);
  EXPECT_NO_THROW(BetaSampler(0.5, 0.5));
  EXPECT_NO_THROW(BetaSampler(80.0, 3.0));
}

TEST(BetaSamplerTest, InvertsItsOwnCdf) {
  const BetaSampler beta(2.5, 4.0);
  EXPECT_DOUBLE_EQ(beta.sample(0.0), 0.0);
  // The sample is the x with cdf(x) == u, up to the bisection's terminal
  // bracket (one ulp of x, amplified through the local density).
  double prev = 0.0;
  for (double u = 0.05; u < 1.0; u += 0.05) {
    const double x = beta.sample(u);
    EXPECT_GT(x, 0.0);
    EXPECT_LT(x, 1.0);
    EXPECT_NEAR(beta.cdf(x), u, 1e-12);
    EXPECT_GE(x, prev);  // monotone in the draw
    prev = x;
  }
  // Median of the symmetric Beta(a, a) is exactly 1/2.
  EXPECT_NEAR(BetaSampler(3.0, 3.0).sample(0.5), 0.5, 1e-12);
}

TEST(BetaSamplerTest, ClosedMomentsMatchTheFormulas) {
  const BetaSampler beta(2.0, 5.0);
  EXPECT_DOUBLE_EQ(beta.mean(), 2.0 / 7.0);
  EXPECT_DOUBLE_EQ(beta.variance(), 10.0 / (49.0 * 8.0));
  // Beta(1, 1) is Uniform(0, 1): the inverse CDF is the identity.
  const BetaSampler uniform(1.0, 1.0);
  EXPECT_DOUBLE_EQ(uniform.mean(), 0.5);
  EXPECT_NEAR(uniform.variance(), 1.0 / 12.0, 1e-15);
  for (double u = 0.1; u < 1.0; u += 0.2)
    EXPECT_NEAR(uniform.sample(u), u, 1e-12);
}

TEST(BetaSamplerTest, EmpiricalMomentsMatchClosedFormWithFixedSeed) {
  for (const auto& [a, b] : {std::pair{2.0, 5.0}, std::pair{5.0, 2.0},
                             std::pair{0.5, 0.5}}) {
    const BetaSampler beta(a, b);
    constexpr std::size_t kDraws = 50000;
    Rng rng(31337);
    double sum = 0.0, sum_sq = 0.0;
    for (std::size_t i = 0; i < kDraws; ++i) {
      const double x = beta.sample(rng.next_double());
      EXPECT_GE(x, 0.0);
      EXPECT_LE(x, 1.0);
      sum += x;
      sum_sq += x * x;
    }
    const double mean = sum / kDraws;
    const double var = sum_sq / kDraws - mean * mean;
    // 4-sigma band on the sample mean; variance gets a 5% relative band.
    EXPECT_NEAR(mean, beta.mean(),
                4.0 * std::sqrt(beta.variance() / kDraws))
        << "a=" << a << " b=" << b;
    EXPECT_NEAR(var, beta.variance(), 0.05 * beta.variance())
        << "a=" << a << " b=" << b;
  }
}

TEST(TrafficTest, PureFunctionsAreDeterministicAcrossGenerators) {
  const ZipfSampler zipf(64, 0.9);
  // Same draws, same samples — regardless of which generator made them.
  Rng a(99), b(99);
  for (int i = 0; i < 1000; ++i) {
    const double u = a.next_double();
    ASSERT_DOUBLE_EQ(u, b.next_double());
    EXPECT_EQ(zipf.sample(u), zipf.sample(u));
  }
  // Philox substreams drive the identical code path: the sampler only sees
  // a u01 double, so client fan-out in bench_serve (one substream per
  // synthetic client) needs no sampler-side support.
  simd::Philox root(2024, 0);
  simd::Philox c0 = root.substream(0);
  simd::Philox c0_again = root.substream(0);
  simd::Philox c1 = root.substream(1);
  bool saw_difference = false;
  for (int i = 0; i < 256; ++i) {
    const double u = c0.next_double();
    ASSERT_DOUBLE_EQ(u, c0_again.next_double());  // replayable stream
    const std::size_t k = zipf.sample(u);
    EXPECT_LT(k, zipf.size());
    if (k != zipf.sample(c1.next_double())) saw_difference = true;
  }
  EXPECT_TRUE(saw_difference);  // substreams are actually independent
}

}  // namespace
}  // namespace rcr::synth
