#include <gtest/gtest.h>

#include <cmath>

#include "sim/network.hpp"
#include "util/error.hpp"

namespace rcr::sim {
namespace {

NetworkModel net() {
  NetworkModel n;
  n.latency_us = 1.0;       // alpha = 1e-6 s
  n.bandwidth_gbs = 10.0;   // beta = 1e-10 s/B
  return n;
}

TEST(PtpTest, AlphaBetaComposition) {
  // 1e6 bytes at 10 GB/s = 1e-4 s, plus 1 us latency.
  EXPECT_NEAR(ptp_time(net(), 1e6), 1e-6 + 1e-4, 1e-12);
  EXPECT_NEAR(ptp_time(net(), 0.0), 1e-6, 1e-15);
}

TEST(BroadcastTest, LogarithmicRounds) {
  const double one = ptp_time(net(), 4096);
  EXPECT_DOUBLE_EQ(broadcast_time(net(), 1, 4096), 0.0);
  EXPECT_NEAR(broadcast_time(net(), 2, 4096), one, 1e-15);
  EXPECT_NEAR(broadcast_time(net(), 8, 4096), 3.0 * one, 1e-15);
  // Non-power-of-two rounds up.
  EXPECT_NEAR(broadcast_time(net(), 9, 4096), 4.0 * one, 1e-15);
}

TEST(AllreduceTest, RingFormula) {
  const std::size_t p = 8;
  const double m = 1e6;
  const double expected = 2.0 * 7.0 * 1e-6 + 2.0 * m * 7.0 / 8.0 * 1e-10;
  EXPECT_NEAR(allreduce_time(net(), p, m), expected, 1e-12);
  EXPECT_DOUBLE_EQ(allreduce_time(net(), 1, m), 0.0);
}

TEST(AllreduceTest, BandwidthTermSaturates) {
  // As p grows, the bandwidth term approaches 2 m beta; latency grows
  // linearly and eventually dominates.
  const double t8 = allreduce_time(net(), 8, 1e6);
  const double t64 = allreduce_time(net(), 64, 1e6);
  EXPECT_GT(t64, t8);
  const double bw_limit = 2.0 * 1e6 * 1e-10;
  EXPECT_GT(t64, bw_limit);
}

TEST(HaloTest, PerNeighborCost) {
  EXPECT_DOUBLE_EQ(halo_exchange_time(net(), 0, 1e5), 0.0);
  EXPECT_NEAR(halo_exchange_time(net(), 4, 1e5),
              4.0 * (1e-6 + 1e5 * 1e-10), 1e-15);
}

TEST(BspTest, ComputeDominatedAtSmallScale) {
  DistributedWorkload w;
  w.work_ops_total = 1e12;
  w.core_gflops = 1.0;
  w.halo_bytes_per_rank = 1e5;
  const double t1 = bsp_step_time(net(), w, 1);
  const double t16 = bsp_step_time(net(), w, 16);
  EXPECT_NEAR(t1, 1000.0, 1e-6);       // pure compute
  EXPECT_LT(t16, t1 / 10.0);           // near-ideal early scaling
}

TEST(BspTest, CommunicationEventuallyDominates) {
  DistributedWorkload w;
  w.work_ops_total = 1e10;  // small problem
  w.core_gflops = 10.0;
  w.halo_bytes_per_rank = 1e6;
  const std::size_t sweet = bsp_sweet_spot(net(), w);
  EXPECT_GE(sweet, 1u);
  EXPECT_LT(sweet, 1u << 14);  // strictly interior: scaling up stops paying
  // Beyond the sweet spot, time rises again.
  const double at_sweet = bsp_step_time(net(), w, sweet);
  const double beyond = bsp_step_time(net(), w, sweet * 16);
  EXPECT_GT(beyond, at_sweet);
}

TEST(BspTest, BiggerProblemsScaleFurther) {
  DistributedWorkload small;
  small.work_ops_total = 1e9;
  DistributedWorkload big = small;
  big.work_ops_total = 1e13;
  EXPECT_LE(bsp_sweet_spot(net(), small), bsp_sweet_spot(net(), big));
}

TEST(NetworkTest, RejectsBadInput) {
  EXPECT_THROW(ptp_time(net(), -1.0), rcr::Error);
  NetworkModel bad = net();
  bad.bandwidth_gbs = 0.0;
  EXPECT_THROW(ptp_time(bad, 1.0), rcr::Error);
  EXPECT_THROW(broadcast_time(net(), 0, 1.0), rcr::Error);
  DistributedWorkload w;
  w.work_ops_total = 0.0;
  EXPECT_THROW(bsp_step_time(net(), w, 4), rcr::Error);
}

}  // namespace
}  // namespace rcr::sim
