#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace rcr {
namespace {

// --- error machinery --------------------------------------------------------

TEST(ErrorTest, CheckThrowsWithLocation) {
  try {
    RCR_CHECK_MSG(1 == 2, "math broke");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("math broke"), std::string::npos);
    EXPECT_NE(what.find("util_test.cpp"), std::string::npos);
  }
}

TEST(ErrorTest, CheckPassesSilently) {
  EXPECT_NO_THROW(RCR_CHECK(2 + 2 == 4));
}

// --- RNG ---------------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(9);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(RngTest, NextBelowCoversAllResidues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(13);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    hit_lo |= v == -3;
    hit_hi |= v == 3;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(RngTest, UniformIntRejectsInvertedRange) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_int(3, 2), Error);
}

TEST(RngTest, NormalMoments) {
  Rng rng(17);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sum2 += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(19);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(RngTest, ExponentialRejectsNonPositiveRate) {
  Rng rng(1);
  EXPECT_THROW(rng.exponential(0.0), Error);
}

TEST(RngTest, GammaMeanAndVariance) {
  Rng rng(23);
  const int n = 100000;
  const double shape = 3.0, scale = 2.0;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.gamma(shape, scale);
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, shape * scale, 0.1);            // 6
  EXPECT_NEAR(sum2 / n - mean * mean, shape * scale * scale, 0.5);  // 12
}

TEST(RngTest, GammaSmallShape) {
  Rng rng(29);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.gamma(0.5, 1.0);
    EXPECT_GT(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, BetaMean) {
  Rng rng(31);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.beta(2.0, 3.0);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 0.4, 0.01);
}

TEST(RngTest, PoissonSmallLambdaMean) {
  Rng rng(37);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(3.5));
  EXPECT_NEAR(sum / n, 3.5, 0.05);
}

TEST(RngTest, PoissonLargeLambdaMean) {
  Rng rng(41);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(200.0));
  EXPECT_NEAR(sum / n, 200.0, 1.0);
}

TEST(RngTest, PoissonZeroLambda) {
  Rng rng(1);
  EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(43);
  const std::vector<double> w = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 40000; ++i) ++counts[rng.categorical(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.2);
}

TEST(RngTest, CategoricalRejectsBadWeights) {
  Rng rng(1);
  EXPECT_THROW(rng.categorical(std::vector<double>{}), Error);
  EXPECT_THROW(rng.categorical(std::vector<double>{0.0, 0.0}), Error);
  EXPECT_THROW(rng.categorical(std::vector<double>{1.0, -1.0}), Error);
}

TEST(RngTest, BernoulliEdges) {
  Rng rng(47);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(53);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto copy = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, copy);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(59);
  const auto idx = rng.sample_without_replacement(100, 30);
  EXPECT_EQ(idx.size(), 30u);
  std::set<std::size_t> s(idx.begin(), idx.end());
  EXPECT_EQ(s.size(), 30u);
  for (auto i : s) EXPECT_LT(i, 100u);
}

TEST(RngTest, SampleWithoutReplacementFull) {
  Rng rng(61);
  const auto idx = rng.sample_without_replacement(5, 5);
  std::set<std::size_t> s(idx.begin(), idx.end());
  EXPECT_EQ(s.size(), 5u);
}

TEST(RngTest, SampleWithoutReplacementRejectsOversample) {
  Rng rng(1);
  EXPECT_THROW(rng.sample_without_replacement(3, 4), Error);
}

TEST(RngTest, SplitStreamsAreDecorrelated) {
  Rng parent(67);
  Rng a = parent.split();
  Rng b = parent.split();
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

// --- alias table -------------------------------------------------------------

TEST(AliasTableTest, MatchesWeights) {
  const std::vector<double> w = {0.1, 0.2, 0.3, 0.4};
  AliasTable table(w);
  Rng rng(71);
  std::vector<int> counts(4, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[table.sample(rng)];
  for (std::size_t i = 0; i < w.size(); ++i)
    EXPECT_NEAR(static_cast<double>(counts[i]) / n, w[i], 0.01);
}

TEST(AliasTableTest, NormalizedProbabilities) {
  AliasTable table(std::vector<double>{2.0, 6.0});
  EXPECT_NEAR(table.probability(0), 0.25, 1e-12);
  EXPECT_NEAR(table.probability(1), 0.75, 1e-12);
}

TEST(AliasTableTest, ZeroWeightNeverSampled) {
  AliasTable table(std::vector<double>{1.0, 0.0, 1.0});
  Rng rng(73);
  for (int i = 0; i < 10000; ++i) EXPECT_NE(table.sample(rng), 1u);
}

TEST(AliasTableTest, SingleOutcome) {
  AliasTable table(std::vector<double>{5.0});
  Rng rng(79);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(table.sample(rng), 0u);
}

TEST(AliasTableTest, RejectsBadInput) {
  EXPECT_THROW(AliasTable(std::vector<double>{}), Error);
  EXPECT_THROW(AliasTable(std::vector<double>{0.0}), Error);
  EXPECT_THROW(AliasTable(std::vector<double>{1.0, -0.5}), Error);
}

// --- strings -------------------------------------------------------------------

TEST(StringsTest, Trim) {
  EXPECT_EQ(trim("  hi  "), "hi");
  EXPECT_EQ(trim("hi"), "hi");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("\t a b \n"), "a b");
}

TEST(StringsTest, Split) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split(",x,", ','), (std::vector<std::string>{"", "x", ""}));
}

TEST(StringsTest, Join) {
  EXPECT_EQ(join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"only"}, ","), "only");
}

TEST(StringsTest, ToLowerAndStartsWith) {
  EXPECT_EQ(to_lower("MiXeD"), "mixed");
  EXPECT_TRUE(starts_with("--flag", "--"));
  EXPECT_FALSE(starts_with("-", "--"));
}

TEST(StringsTest, ParseDouble) {
  EXPECT_EQ(parse_double("3.5"), 3.5);
  EXPECT_EQ(parse_double(" -2 "), -2.0);
  EXPECT_FALSE(parse_double("abc"));
  EXPECT_FALSE(parse_double("1.5x"));
  EXPECT_FALSE(parse_double(""));
}

TEST(StringsTest, ParseInt) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int("-7"), -7);
  EXPECT_FALSE(parse_int("4.2"));
  EXPECT_FALSE(parse_int(""));
}

TEST(StringsTest, FormatDouble) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(0.5, 0), "0");  // banker's-free printf rounding
  EXPECT_EQ(format_double(-1.005, 1), "-1.0");
  EXPECT_EQ(format_double(std::nan(""), 2), "nan");
}

TEST(StringsTest, FormatPercent) {
  EXPECT_EQ(format_percent(0.1234), "12.3%");
  EXPECT_EQ(format_percent(1.0, 0), "100%");
}

// --- CLI ----------------------------------------------------------------------

TEST(CliTest, ParsesEqualsAndSpaceForms) {
  const char* argv[] = {"prog", "pos", "--alpha=3", "--beta", "x", "--flag"};
  CliParser cli(6, argv);
  EXPECT_EQ(cli.get_int_or("alpha", 0), 3);
  EXPECT_EQ(cli.get_or("beta", ""), "x");
  EXPECT_TRUE(cli.has_switch("flag"));
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "pos");
  EXPECT_NO_THROW(cli.finish());
}

TEST(CliTest, DefaultsApply) {
  const char* argv[] = {"prog"};
  CliParser cli(1, argv);
  EXPECT_EQ(cli.get_int_or("n", 42), 42);
  EXPECT_EQ(cli.get_double_or("x", 2.5), 2.5);
  EXPECT_FALSE(cli.has_switch("verbose"));
}

TEST(CliTest, RejectsUnknownFlag) {
  const char* argv[] = {"prog", "--mystery=1"};
  CliParser cli(2, argv);
  EXPECT_THROW(cli.finish(), InvalidInputError);
}

TEST(CliTest, RejectsBadNumeric) {
  const char* argv[] = {"prog", "--n=abc"};
  CliParser cli(2, argv);
  EXPECT_THROW(cli.get_int_or("n", 0), InvalidInputError);
}

}  // namespace
}  // namespace rcr
