// rcr::sweep — provenance stamping, fingerprint reproducibility, and the
// standard scenario catalog.
#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "sweep/scenarios.hpp"
#include "sweep/sweep.hpp"
#include "util/error.hpp"

namespace rcr::sweep {
namespace {

CellSpec toy_cell(const std::string& id = "toy-a", double knob = 1.5) {
  CellSpec spec;
  spec.id = id;
  spec.scenario = "toy";
  spec.config = "scenario=toy knob=" + std::to_string(knob);
  spec.run = [knob](const CellContext& ctx) {
    return std::vector<Metric>{
        {"knob_echo", knob},
        {"seed_low_bits", static_cast<double>(ctx.seed & 0xFFFF)},
    };
  };
  return spec;
}

TEST(SweepTest, StampsFullProvenance) {
  SweepConfig cfg;
  cfg.seed = 99;
  const CellResult r = run_cell(toy_cell(), cfg);
  EXPECT_EQ(r.provenance.master_seed, 99u);
  EXPECT_EQ(r.provenance.config_hash, config_hash(toy_cell().config));
  EXPECT_EQ(r.provenance.cell_seed, cell_seed(99, r.provenance.config_hash));
  EXPECT_NE(r.provenance.config_hash, 0u);
  EXPECT_NE(r.provenance.cell_seed, 0u);
  EXPECT_FALSE(r.provenance.simd_isa.empty());
  EXPECT_EQ(r.provenance.threads, 0u);  // serial run
  EXPECT_EQ(r.fingerprint, fingerprint_metrics(r.metrics));

  parallel::ThreadPool pool(3);
  cfg.pool = &pool;
  EXPECT_EQ(run_cell(toy_cell(), cfg).provenance.threads, 3u);
}

TEST(SweepTest, ReRunningACellReproducesItsFingerprint) {
  SweepConfig cfg;
  cfg.seed = 4242;
  const CellResult first = run_cell(toy_cell(), cfg);
  const CellResult again = run_cell(toy_cell(), cfg);
  EXPECT_EQ(first.fingerprint, again.fingerprint);
  EXPECT_EQ(first.provenance.cell_seed, again.provenance.cell_seed);
  // The recorded provenance alone is enough to replay the cell.
  SweepConfig replay;
  replay.seed = first.provenance.master_seed;
  EXPECT_EQ(run_cell(toy_cell(), replay).fingerprint, first.fingerprint);
}

TEST(SweepTest, FingerprintIsBitwiseOverMetrics) {
  const std::vector<Metric> m = {{"a", 0.1}, {"b", -3.0}};
  EXPECT_EQ(fingerprint_metrics(m), fingerprint_metrics(m));
  // Any change — value (by one ulp), name, or order — changes the hash.
  std::vector<Metric> ulp = m;
  double v = ulp[0].value;
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  ++bits;
  std::memcpy(&v, &bits, sizeof v);
  ulp[0].value = v;
  EXPECT_NE(fingerprint_metrics(ulp), fingerprint_metrics(m));
  std::vector<Metric> renamed = m;
  renamed[1].name = "c";
  EXPECT_NE(fingerprint_metrics(renamed), fingerprint_metrics(m));
  const std::vector<Metric> reordered = {m[1], m[0]};
  EXPECT_NE(fingerprint_metrics(reordered), fingerprint_metrics(m));
}

TEST(SweepTest, CellSeedsAreIndependentOfCatalogOrder) {
  // Seeds derive from (master, config) only, so reordering or subsetting
  // the catalog never perturbs a cell's stream.
  SweepConfig cfg;
  cfg.seed = 7;
  const auto ab = run_sweep({toy_cell("a", 1.0), toy_cell("b", 2.0)}, cfg);
  const auto ba = run_sweep({toy_cell("b", 2.0), toy_cell("a", 1.0)}, cfg);
  ASSERT_EQ(ab.size(), 2u);
  EXPECT_EQ(ab[0].fingerprint, ba[1].fingerprint);
  EXPECT_EQ(ab[1].fingerprint, ba[0].fingerprint);
  EXPECT_NE(ab[0].fingerprint, ab[1].fingerprint);  // different configs
  EXPECT_NE(ab[0].provenance.cell_seed, ab[1].provenance.cell_seed);
}

TEST(SweepTest, ValidatesItsInputs) {
  SweepConfig cfg;
  CellSpec no_id = toy_cell();
  no_id.id.clear();
  EXPECT_THROW(run_cell(no_id, cfg), rcr::Error);
  CellSpec no_body = toy_cell();
  no_body.run = nullptr;
  EXPECT_THROW(run_cell(no_body, cfg), rcr::Error);
  CellSpec no_metrics = toy_cell();
  no_metrics.run = [](const CellContext&) { return std::vector<Metric>{}; };
  EXPECT_THROW(run_cell(no_metrics, cfg), rcr::Error);
}

TEST(SweepTest, CellJsonCarriesProvenanceAndExactBits) {
  SweepConfig cfg;
  cfg.seed = 5;
  const CellResult r = run_cell(toy_cell(), cfg);
  const std::string json = render_cell_json(r);
  for (const char* key :
       {"\"id\"", "\"scenario\"", "\"config\"", "\"master_seed\"",
        "\"cell_seed\"", "\"threads\"", "\"simd_isa\"", "\"config_hash\"",
        "\"metrics\"", "\"bits\"", "\"fingerprint\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  const std::string table = render_sweep_table({r});
  EXPECT_NE(table.find("toy-a"), std::string::npos);
  EXPECT_NE(render_sweep_json({r}).find(json), std::string::npos);
}

TEST(SweepCatalogTest, StandardCatalogIsWellFormed) {
  const auto cells = standard_catalog();
  EXPECT_EQ(cells.size(), amdahl_ablation_grid().size() +
                              queue_policy_grid().size() +
                              network_contention_grid().size() +
                              population_grid().size() +
                              beta_trait_grid().size());
  std::set<std::string> ids;
  std::set<std::uint64_t> hashes;
  for (const auto& c : cells) {
    EXPECT_FALSE(c.id.empty());
    EXPECT_FALSE(c.scenario.empty());
    EXPECT_TRUE(c.run != nullptr) << c.id;
    EXPECT_TRUE(ids.insert(c.id).second) << "duplicate id " << c.id;
    EXPECT_TRUE(hashes.insert(config_hash(c.config)).second)
        << "duplicate config " << c.config;
  }
}

TEST(SweepCatalogTest, CatalogCellsArePoolInvariant) {
  // One representative cell per family: serial fingerprint == pooled
  // fingerprint (the engines underneath are bitwise pool-invariant).
  SweepConfig serial;
  serial.seed = 7;
  parallel::ThreadPool pool(4);
  SweepConfig pooled;
  pooled.seed = 7;
  pooled.pool = &pool;
  for (const auto& grid :
       {amdahl_ablation_grid(), queue_policy_grid(),
        network_contention_grid(), population_grid(), beta_trait_grid()}) {
    ASSERT_FALSE(grid.empty());
    const auto& cell = grid.front();
    const CellResult a = run_cell(cell, serial);
    const CellResult b = run_cell(cell, pooled);
    EXPECT_EQ(a.fingerprint, b.fingerprint) << cell.id;
    ASSERT_EQ(a.metrics.size(), b.metrics.size());
    for (std::size_t i = 0; i < a.metrics.size(); ++i)
      EXPECT_DOUBLE_EQ(a.metrics[i].value, b.metrics[i].value)
          << cell.id << ":" << a.metrics[i].name;
  }
}

}  // namespace
}  // namespace rcr::sweep
