// Philox4x32-10 pinned to the spec: the published Random123 known-answer
// vectors, the counter/key packing, the O(1) skip/seek algebra, substream
// independence, and the batched fill paths' bitwise equivalence to the
// scalar draw loop at every compiled SIMD width.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "simd/dispatch.hpp"
#include "simd/kernels.hpp"
#include "simd/philox.hpp"

namespace rcr::simd {
namespace {

std::vector<Isa> available_isas() {
  std::vector<Isa> isas;
  for (const Isa isa : {Isa::kScalar, Isa::kSse2, Isa::kAvx2, Isa::kAvx512})
    if (isa_available(isa)) isas.push_back(isa);
  return isas;
}

// Pins dispatch to one ISA for the lifetime of a scope.
struct ForcedIsa {
  explicit ForcedIsa(Isa isa) { force_isa(isa); }
  ~ForcedIsa() { clear_isa_override(); }
};

// --- Known-answer vectors ---------------------------------------------------
// From the Random123 distribution's kat_vectors file, philox4x32-10 rows.

TEST(PhiloxTest, KnownAnswerAllZero) {
  const auto out = Philox::block({0, 0, 0, 0}, {0, 0});
  const std::array<std::uint32_t, 4> want = {0x6627e8d5u, 0xe169c58du,
                                             0xbc57ac4cu, 0x9b00dbd8u};
  EXPECT_EQ(out, want);
}

TEST(PhiloxTest, KnownAnswerAllOnes) {
  const std::uint32_t ff = 0xffffffffu;
  const auto out = Philox::block({ff, ff, ff, ff}, {ff, ff});
  const std::array<std::uint32_t, 4> want = {0x408f276du, 0x41c83b0eu,
                                             0xa20bc7c6u, 0x6d5451fdu};
  EXPECT_EQ(out, want);
}

TEST(PhiloxTest, KnownAnswerPiDigits) {
  const auto out = Philox::block({0x243f6a88u, 0x85a308d3u,
                                  0x13198a2eu, 0x03707344u},
                                 {0xa4093822u, 0x299f31d0u});
  const std::array<std::uint32_t, 4> want = {0xd16cfe09u, 0x94fdccebu,
                                             0x5001e420u, 0x24126ea1u};
  EXPECT_EQ(out, want);
}

// The draw convention on top of the block function: block b of stream s is
// counter {lo(b), hi(b), lo(s), hi(s)}, key {lo(seed), hi(seed)}; draw 2b
// is x0 | x1 << 32 and draw 2b + 1 is x2 | x3 << 32.
TEST(PhiloxTest, DrawConventionMatchesBlockFunction) {
  const std::uint64_t seed = 0x123456789ABCDEF0ULL;
  const std::uint64_t stream = 0xFEDCBA9876543210ULL;
  Philox g(seed, stream);
  for (std::uint64_t b = 0; b < 4; ++b) {
    const auto x = Philox::block(
        {static_cast<std::uint32_t>(b), static_cast<std::uint32_t>(b >> 32),
         static_cast<std::uint32_t>(stream),
         static_cast<std::uint32_t>(stream >> 32)},
        {static_cast<std::uint32_t>(seed),
         static_cast<std::uint32_t>(seed >> 32)});
    EXPECT_EQ(g.next_u64(), x[0] | (std::uint64_t{x[1]} << 32));
    EXPECT_EQ(g.next_u64(), x[2] | (std::uint64_t{x[3]} << 32));
  }
}

// --- Position algebra -------------------------------------------------------

TEST(PhiloxTest, SkipEqualsDrawingN) {
  Philox drawn(7, 3);
  Philox skipped(7, 3);
  for (int i = 0; i < 137; ++i) drawn.next_u64();
  skipped.skip(137);
  EXPECT_EQ(skipped.position(), 137u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(skipped.next_u64(), drawn.next_u64());
}

TEST(PhiloxTest, SeekIsAbsoluteAndPositionTracksDraws) {
  Philox g(42);
  EXPECT_EQ(g.position(), 0u);
  g.next_u64();
  g.next_u64();
  g.next_u64();
  EXPECT_EQ(g.position(), 3u);

  Philox h(42);
  h.seek(3);
  EXPECT_EQ(h.next_u64(), g.next_u64());

  // Seeking backwards replays the identical draws — each one is a pure
  // function of the position, with no sequential state to corrupt.
  const std::uint64_t p = g.position();
  const std::uint64_t first = g.next_u64();
  const std::uint64_t second = g.next_u64();
  g.seek(p);
  EXPECT_EQ(g.next_u64(), first);
  EXPECT_EQ(g.next_u64(), second);
}

// --- Streams ----------------------------------------------------------------

TEST(PhiloxTest, SubstreamsAreIndependentAndDisjoint) {
  Philox base(99, 0);
  Philox s1 = base.substream(1);
  Philox s2 = base.substream(2);
  EXPECT_EQ(s1.seed(), base.seed());
  EXPECT_EQ(s1.stream(), 1u);
  EXPECT_EQ(s2.stream(), 2u);
  EXPECT_EQ(s1.position(), 0u);

  // No collisions across the three streams' prefixes (2^-64-ish odds of a
  // false failure if the cipher were random — zero if it's correct, since
  // the counter inputs are all distinct).
  std::unordered_set<std::uint64_t> seen;
  for (int i = 0; i < 256; ++i) {
    seen.insert(base.next_u64());
    seen.insert(s1.next_u64());
    seen.insert(s2.next_u64());
  }
  EXPECT_EQ(seen.size(), 3u * 256u);
}

TEST(PhiloxTest, SameStreamSameSeedReproduces) {
  Philox a(1234, 56);
  Philox b(1234, 56);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

// --- Batched fills ----------------------------------------------------------

TEST(PhiloxTest, FillU64MatchesScalarDrawsAtEveryWidth) {
  // Odd start offsets exercise the half-block head; odd lengths exercise
  // the scalar tail after the vector body; 1003 leaves a non-multiple-of-L
  // block tail at every lane width.
  const std::uint64_t seed = 0xDEADBEEFCAFEF00DULL;
  for (const Isa isa : available_isas()) {
    ForcedIsa forced(isa);
    for (const std::uint64_t start : {0ull, 1ull, 3ull, 7ull}) {
      for (const std::size_t len : {1ul, 2ul, 7ul, 64ul, 1003ul}) {
        Philox scalar(seed, 5);
        scalar.seek(start);
        std::vector<std::uint64_t> want(len);
        for (auto& v : want) v = scalar.next_u64();

        Philox batched(seed, 5);
        batched.seek(start);
        std::vector<std::uint64_t> got(len);
        batched.fill_u64(got);
        EXPECT_EQ(got, want) << isa_name(isa) << " start=" << start
                             << " len=" << len;
        EXPECT_EQ(batched.position(), start + len);
      }
    }
  }
}

TEST(PhiloxTest, FillDoubleMatchesScalarDrawsAtEveryWidth) {
  for (const Isa isa : available_isas()) {
    ForcedIsa forced(isa);
    Philox scalar(2026, 1);
    Philox batched(2026, 1);
    // 1537 crosses the fill_double internal chunk boundary (1024 u64s) and
    // ends mid-block.
    std::vector<double> want(1537), got(1537);
    for (auto& v : want) v = scalar.next_double();
    batched.fill_double(got);
    for (std::size_t i = 0; i < want.size(); ++i)
      ASSERT_EQ(want[i], got[i]) << isa_name(isa) << " i=" << i;
  }
}

TEST(PhiloxTest, NextDoubleIsUnitIntervalConvention) {
  Philox g(8, 0);
  Philox u(8, 0);
  for (int i = 0; i < 256; ++i) {
    const double d = g.next_double();
    EXPECT_EQ(d, static_cast<double>(u.next_u64() >> 11) * 0x1.0p-53);
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

// The raw kernel agrees with the reference block function directly (not
// just through the Philox wrapper).
TEST(PhiloxTest, RawKernelMatchesBlockReference) {
  const std::uint64_t seed = 31337;
  Philox owner(seed, 9);  // owns a correctly bumped key schedule
  for (const Isa isa : available_isas()) {
    ForcedIsa forced(isa);
    constexpr std::size_t kBlocks = 21;  // odd tail at every width
    std::vector<std::uint64_t> dst(2 * kBlocks);

    // Rebuild the bumped schedule the way the Philox ctor does.
    std::array<std::uint32_t, 20> keys{};
    std::uint32_t k0 = static_cast<std::uint32_t>(seed);
    std::uint32_t k1 = static_cast<std::uint32_t>(seed >> 32);
    for (int r = 0; r < Philox::kRounds; ++r) {
      keys[2 * r] = k0;
      keys[2 * r + 1] = k1;
      k0 += Philox::kWeyl0;
      k1 += Philox::kWeyl1;
    }
    philox_fill_u64(100, 9, keys.data(), dst.data(), kBlocks);

    for (std::uint64_t b = 0; b < kBlocks; ++b) {
      const std::uint64_t blk = 100 + b;
      const auto x = Philox::block(
          {static_cast<std::uint32_t>(blk),
           static_cast<std::uint32_t>(blk >> 32), 9u, 0u},
          {keys[0], keys[1]});
      EXPECT_EQ(dst[2 * b], x[0] | (std::uint64_t{x[1]} << 32))
          << isa_name(isa) << " block " << b;
      EXPECT_EQ(dst[2 * b + 1], x[2] | (std::uint64_t{x[3]} << 32))
          << isa_name(isa) << " block " << b;
    }
  }
}

}  // namespace
}  // namespace rcr::simd
