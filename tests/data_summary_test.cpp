// Tests for data::describe plus the full-wave CSV round-trip integration.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "data/csv.hpp"
#include "data/summary.hpp"
#include "synth/domain.hpp"
#include "synth/generator.hpp"
#include "util/error.hpp"

namespace rcr {
namespace {

TEST(DescribeTest, CoversEveryColumnKind) {
  data::Table t;
  auto& v = t.add_numeric("score");
  auto& c = t.add_categorical("dept", {"cs", "bio"});
  auto& m = t.add_multiselect("tools", {"git", "make"});
  v.push(1.0); c.push("cs");  m.push_labels({"git"});
  v.push(3.0); c.push("cs");  m.push_labels({"git", "make"});
  v.push_missing(); c.push("bio"); m.push_missing();

  const std::string out = data::describe(t);
  EXPECT_NE(out.find("score"), std::string::npos);
  EXPECT_NE(out.find("mean 2.00"), std::string::npos);
  EXPECT_NE(out.find("mode 'cs' (67%)"), std::string::npos);
  EXPECT_NE(out.find("top 'git' (100%)"), std::string::npos);
  // Missing counts: one per column.
  EXPECT_NE(out.find("numeric       2  1"), std::string::npos);
}

TEST(DescribeTest, AllMissingColumnsHandled) {
  data::Table t;
  t.add_numeric("v").push_missing();
  const std::string out = data::describe(t);
  EXPECT_NE(out.find("(all missing)"), std::string::npos);
}

TEST(DescribeTest, WorksOnFullSyntheticWave) {
  const auto wave = synth::generate_2024(120, 5);
  const std::string out = data::describe(wave);
  for (const auto& name : wave.column_names())
    EXPECT_NE(out.find(name), std::string::npos) << name;
}

TEST(WaveCsvRoundTripTest, FullWaveSurvivesSerialization) {
  const auto wave = synth::generate_2024(200, 9);
  std::ostringstream buffer;
  data::write_csv(buffer, wave);
  std::istringstream in(buffer.str());
  const auto schema = synth::instrument().make_table();
  const auto back = data::read_csv(in, schema);

  ASSERT_EQ(back.row_count(), wave.row_count());
  // Masks, codes, and numerics all survive byte-for-byte semantics.
  const auto& langs_a = wave.multiselect(synth::col::kLanguages);
  const auto& langs_b = back.multiselect(synth::col::kLanguages);
  const auto& field_a = wave.categorical(synth::col::kField);
  const auto& field_b = back.categorical(synth::col::kField);
  const auto& cores_a = wave.numeric(synth::col::kCoresTypical);
  const auto& cores_b = back.numeric(synth::col::kCoresTypical);
  const auto& models_a = wave.multiselect(synth::col::kParallelModels);
  const auto& models_b = back.multiselect(synth::col::kParallelModels);
  for (std::size_t i = 0; i < wave.row_count(); ++i) {
    EXPECT_EQ(langs_a.mask_at(i), langs_b.mask_at(i));
    EXPECT_EQ(field_a.code_at(i), field_b.code_at(i));
    EXPECT_EQ(models_a.is_missing(i), models_b.is_missing(i));
    if (!models_a.is_missing(i)) {
      EXPECT_EQ(models_a.mask_at(i), models_b.mask_at(i));
    }
    const bool miss_a = data::NumericColumn::is_missing(cores_a.at(i));
    EXPECT_EQ(miss_a, data::NumericColumn::is_missing(cores_b.at(i)));
    if (!miss_a) {
      EXPECT_DOUBLE_EQ(cores_a.at(i), cores_b.at(i));
    }
  }
}

TEST(WaveCsvRoundTripTest, FileVariantWorks) {
  const auto wave = synth::generate_2011(40, 13);
  const std::string path = "/tmp/rcr_roundtrip_test.csv";
  data::write_csv_file(path, wave);
  const auto back =
      data::read_csv_file(path, synth::instrument().make_table());
  EXPECT_EQ(back.row_count(), wave.row_count());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rcr
