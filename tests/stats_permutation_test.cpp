#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "stats/contingency.hpp"
#include "stats/permutation.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rcr::stats {
namespace {

std::vector<double> normal_sample(std::size_t n, double mean,
                                  std::uint64_t seed) {
  rcr::Rng rng(seed);
  std::vector<double> v(n);
  for (double& x : v) x = rng.normal(mean, 1.0);
  return v;
}

TEST(PermutationTest, NoEffectGivesHighP) {
  const auto x = normal_sample(60, 5.0, 1);
  const auto y = normal_sample(60, 5.0, 2);
  const auto r = permutation_test_mean_diff(x, y);
  EXPECT_GT(r.p_value, 0.05);
  EXPECT_EQ(r.permutations, 5000u);
}

TEST(PermutationTest, ClearEffectDetected) {
  const auto x = normal_sample(60, 6.0, 3);
  const auto y = normal_sample(60, 5.0, 4);
  const auto r = permutation_test_mean_diff(x, y);
  EXPECT_LT(r.p_value, 0.001);
  EXPECT_LT(r.p_greater, 0.001);   // x > y direction
  EXPECT_GT(r.p_less, 0.99);
  EXPECT_NEAR(r.observed, 1.0, 0.4);
}

TEST(PermutationTest, TypeIErrorNearAlpha) {
  // Under the null, p-values are uniform: rejection rate at 0.05 ≈ 5%.
  rcr::Rng rng(5);
  int rejections = 0;
  const int trials = 200;
  PermutationOptions opts;
  opts.permutations = 400;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> x(20), y(20);
    for (double& v : x) v = rng.normal();
    for (double& v : y) v = rng.normal();
    opts.seed = static_cast<std::uint64_t>(t) + 1000;
    if (permutation_test_mean_diff(x, y, opts).p_value < 0.05) ++rejections;
  }
  const double rate = static_cast<double>(rejections) / trials;
  EXPECT_GT(rate, 0.005);
  EXPECT_LT(rate, 0.12);
}

TEST(PermutationTest, SerialAndParallelIdentical) {
  const auto x = normal_sample(40, 5.2, 6);
  const auto y = normal_sample(50, 5.0, 7);
  rcr::parallel::ThreadPool pool(3);
  PermutationOptions serial;
  serial.seed = 42;
  PermutationOptions parallel = serial;
  parallel.pool = &pool;
  const auto a = permutation_test_mean_diff(x, y, serial);
  const auto b = permutation_test_mean_diff(x, y, parallel);
  EXPECT_DOUBLE_EQ(a.p_value, b.p_value);
  EXPECT_DOUBLE_EQ(a.p_greater, b.p_greater);
}

TEST(PermutationTest, ProportionVariantAgreesWithZTestDirection) {
  rcr::Rng rng(8);
  std::vector<double> x, y;
  for (int i = 0; i < 200; ++i) x.push_back(rng.bernoulli(0.6) ? 1.0 : 0.0);
  for (int i = 0; i < 200; ++i) y.push_back(rng.bernoulli(0.4) ? 1.0 : 0.0);
  const auto perm = permutation_test_proportion_diff(x, y);
  double sx = 0, sy = 0;
  for (double v : x) sx += v;
  for (double v : y) sy += v;
  const auto z = two_proportion_test(sx, x.size(), sy, y.size());
  EXPECT_LT(perm.p_value, 0.05);
  EXPECT_LT(z.p_value, 0.05);
  // Permutation and asymptotic p agree within an order of magnitude floor.
  EXPECT_LT(std::fabs(perm.p_value - z.p_value), 0.02);
}

TEST(PermutationTest, PValueNeverZero) {
  // The +1 correction keeps p > 0 even for extreme observed statistics.
  const std::vector<double> x = {100.0, 101.0, 102.0};
  const std::vector<double> y = {1.0, 2.0, 3.0};
  PermutationOptions opts;
  opts.permutations = 100;
  const auto r = permutation_test_mean_diff(x, y, opts);
  EXPECT_GT(r.p_value, 0.0);
  EXPECT_GE(r.p_value, 1.0 / 101.0);
}

TEST(PermutationTest, CustomStatistic) {
  // Max-minus-max statistic through the generic interface.
  const std::vector<double> x = {1, 2, 9};
  const std::vector<double> y = {1, 2, 3};
  const auto r = permutation_test(
      x, y,
      [](std::span<const double> a, std::span<const double> b) {
        double ma = a[0], mb = b[0];
        for (double v : a) ma = std::max(ma, v);
        for (double v : b) mb = std::max(mb, v);
        return ma - mb;
      });
  EXPECT_DOUBLE_EQ(r.observed, 6.0);
  EXPECT_LE(r.p_value, 1.0);
}

TEST(PermutationTest, RejectsBadInput) {
  const std::vector<double> x = {1.0};
  const std::vector<double> empty;
  EXPECT_THROW(permutation_test_mean_diff(x, empty), rcr::Error);
  PermutationOptions opts;
  opts.permutations = 5;
  EXPECT_THROW(permutation_test_mean_diff(x, x, opts), rcr::Error);
  EXPECT_THROW(
      permutation_test_proportion_diff(std::vector<double>{0.5},
                                       std::vector<double>{1.0}),
      rcr::Error);
}

}  // namespace
}  // namespace rcr::stats
