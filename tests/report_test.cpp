#include <gtest/gtest.h>

#include "report/experiment.hpp"
#include "report/series.hpp"
#include "report/table.hpp"
#include "util/error.hpp"

namespace rcr::report {
namespace {

TEST(TextTableTest, RendersAlignedColumns) {
  TextTable t({"Name", "Value"});
  t.add_row({"alpha", "1"}).add_row({"b", "22222"});
  const std::string out = t.render();
  // Header first, rule second, rows after.
  EXPECT_EQ(out.find("Name"), 0u);
  EXPECT_NE(out.find("-----"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  // Columns align: "Value" starts at the same offset in each line.
  const auto lines_at = [&](std::size_t n) {
    std::size_t pos = 0;
    for (std::size_t i = 0; i < n; ++i) pos = out.find('\n', pos) + 1;
    return out.substr(pos, out.find('\n', pos) - pos);
  };
  const std::string header = lines_at(0);
  const std::string row = lines_at(2);
  EXPECT_EQ(header.find("Value"), row.find("1"));
}

TEST(TextTableTest, MarkdownFormat) {
  TextTable t({"A", "B"});
  t.add_row({"x", "y"});
  const std::string md = t.render_markdown();
  EXPECT_NE(md.find("| A | B |"), std::string::npos);
  EXPECT_NE(md.find("| --- | --- |"), std::string::npos);
  EXPECT_NE(md.find("| x | y |"), std::string::npos);
}

TEST(TextTableTest, RejectsMismatchedRow) {
  TextTable t({"A", "B"});
  EXPECT_THROW(t.add_row({"only one"}), rcr::Error);
  EXPECT_THROW(TextTable({}), rcr::Error);
}

TEST(CellsTest, ShareAndP) {
  EXPECT_EQ(share_cell(0.25, 0.2, 0.31), "25.0% [20.0, 31.0]");
  EXPECT_EQ(p_cell(0.0004), "<0.001");
  EXPECT_EQ(p_cell(0.042), "0.042");
}

TEST(SeriesTest, CsvFormat) {
  Series a{"ya", {{1.0, 2.0}, {2.0, 4.0}}};
  Series b{"yb", {{1.0, 3.0}, {2.0, 6.0}}};
  const std::string csv = render_series_csv("x", {a, b});
  EXPECT_EQ(csv.find("x,ya,yb\n"), 0u);
  EXPECT_NE(csv.find("1.000000,2.000000,3.000000"), std::string::npos);
}

TEST(SeriesTest, RejectsMisalignedSeries) {
  Series a{"ya", {{1.0, 2.0}}};
  Series b{"yb", {{1.0, 3.0}, {2.0, 6.0}}};
  EXPECT_THROW(render_series_csv("x", {a, b}), rcr::Error);
  Series c{"yc", {{9.0, 3.0}}};
  EXPECT_THROW(render_series_csv("x", {a, c}), rcr::Error);
  EXPECT_THROW(render_series_csv("x", {}), rcr::Error);
}

TEST(BarsTest, RendersProportionalBars) {
  const std::string out =
      render_bars({{"half", 0.5}, {"full", 1.0}}, 1.0, 10);
  EXPECT_NE(out.find("half  #####....."), std::string::npos);
  EXPECT_NE(out.find("full  ##########"), std::string::npos);
}

TEST(BarsTest, AutoScalesToMax) {
  const std::string out = render_bars({{"a", 2.0}, {"b", 4.0}}, 0.0, 8);
  EXPECT_NE(out.find("a  ####...."), std::string::npos);
  EXPECT_NE(out.find("b  ########"), std::string::npos);
}

TEST(BarsTest, RejectsBadInput) {
  EXPECT_THROW(render_bars({}), rcr::Error);
  EXPECT_THROW(render_bars({{"neg", -1.0}}), rcr::Error);
}

TEST(RegistryTest, AddAndRun) {
  ExperimentRegistry reg;
  reg.add({"T9", "table", "demo", [] { return std::string("body"); }});
  EXPECT_TRUE(reg.has("T9"));
  EXPECT_FALSE(reg.has("T1"));
  const std::string out = reg.run("T9");
  EXPECT_NE(out.find("== T9 (table): demo =="), std::string::npos);
  EXPECT_NE(out.find("body"), std::string::npos);
}

TEST(RegistryTest, RejectsDuplicatesAndUnknown) {
  ExperimentRegistry reg;
  reg.add({"X", "figure", "t", [] { return std::string(); }});
  EXPECT_THROW(reg.add({"X", "figure", "t", [] { return std::string(); }}),
               rcr::Error);
  EXPECT_THROW(reg.run("Y"), rcr::Error);
  EXPECT_THROW(reg.add({"", "figure", "t", [] { return std::string(); }}),
               rcr::Error);
}

}  // namespace
}  // namespace rcr::report
