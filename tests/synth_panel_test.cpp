// Tests for McNemar's test, the longitudinal panel generator, and the
// paired transition analysis.
#include <gtest/gtest.h>

#include <cmath>

#include "stats/contingency.hpp"
#include "survey/schema.hpp"
#include "synth/domain.hpp"
#include "synth/generator.hpp"
#include "trend/trend.hpp"
#include "util/error.hpp"

namespace rcr {
namespace {

// --- McNemar ---------------------------------------------------------------------

TEST(McNemarTest, NoDiscordantPairsGivesPOne) {
  const auto r = stats::mcnemar_test(0, 0);
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);
}

TEST(McNemarTest, ExactSmallSample) {
  // b=8, c=2: exact two-sided binomial p = 2 * P(X <= 2 | n=10, 0.5)
  //         = 2 * (1 + 10 + 45)/1024 = 0.109375.
  const auto r = stats::mcnemar_test(8, 2);
  EXPECT_TRUE(r.exact);
  EXPECT_NEAR(r.p_value, 0.109375, 1e-9);
}

TEST(McNemarTest, ExactSymmetricCase) {
  const auto r = stats::mcnemar_test(5, 5);
  EXPECT_TRUE(r.exact);
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);  // clamped from 2*P(X<=5) > 1
}

TEST(McNemarTest, LargeSampleChiSquared) {
  // b=40, c=10: corrected chi2 = (|30|-1)^2/50 = 16.82, p ~ 4.1e-5.
  const auto r = stats::mcnemar_test(40, 10);
  EXPECT_FALSE(r.exact);
  EXPECT_NEAR(r.statistic, 16.82, 1e-10);
  EXPECT_LT(r.p_value, 1e-4);
  EXPECT_GT(r.p_value, 1e-6);
}

TEST(McNemarTest, RejectsNonIntegerCounts) {
  EXPECT_THROW(stats::mcnemar_test(1.5, 2), rcr::Error);
  EXPECT_THROW(stats::mcnemar_test(-1, 2), rcr::Error);
}

// --- panel generator ---------------------------------------------------------------

TEST(PanelTest, PairedAndValid) {
  const auto panel = synth::generate_panel(150, 11);
  EXPECT_EQ(panel.wave2011.row_count(), 150u);
  EXPECT_EQ(panel.wave2024.row_count(), 150u);
  EXPECT_TRUE(
      survey::validate_responses(synth::instrument(), panel.wave2011).empty());
  EXPECT_TRUE(
      survey::validate_responses(synth::instrument(), panel.wave2024).empty());
}

TEST(PanelTest, DeterministicForSeed) {
  const auto a = synth::generate_panel(60, 3);
  const auto b = synth::generate_panel(60, 3);
  const auto& la = a.wave2024.multiselect(synth::col::kLanguages);
  const auto& lb = b.wave2024.multiselect(synth::col::kLanguages);
  for (std::size_t i = 0; i < 60; ++i)
    EXPECT_EQ(la.mask_at(i), lb.mask_at(i));
}

TEST(PanelTest, IdentityInvariants) {
  const auto panel = synth::generate_panel(300, 17);
  const auto& f11 = panel.wave2011.categorical(synth::col::kField);
  const auto& f24 = panel.wave2024.categorical(synth::col::kField);
  const auto& c11 = panel.wave2011.categorical(synth::col::kCareerStage);
  const auto& c24 = panel.wave2024.categorical(synth::col::kCareerStage);
  const auto& y11 = panel.wave2011.numeric(synth::col::kYearsProgramming);
  const auto& y24 = panel.wave2024.numeric(synth::col::kYearsProgramming);
  for (std::size_t i = 0; i < 300; ++i) {
    // Field is stable.
    EXPECT_EQ(f11.code_at(i), f24.code_at(i));
    // Nobody is still a grad student 13 years on.
    if (c11.label_at(i) == "Grad student") {
      EXPECT_NE(c24.label_at(i), "Grad student");
    }
    // Experience moved forward when both answers are present.
    if (!data::NumericColumn::is_missing(y11.at(i)) &&
        !data::NumericColumn::is_missing(y24.at(i))) {
      EXPECT_GE(y24.at(i), y11.at(i));
    }
  }
}

TEST(PanelTest, GeneratorConsistencyRulesHoldAfterEvolution) {
  const auto panel = synth::generate_panel(300, 23);
  const auto& t = panel.wave2024;
  const auto& langs = t.multiselect(synth::col::kLanguages);
  const auto& primary = t.categorical(synth::col::kPrimaryLanguage);
  const auto& res = t.multiselect(synth::col::kParallelResources);
  const auto& models = t.multiselect(synth::col::kParallelModels);
  const auto& cores = t.numeric(synth::col::kCoresTypical);
  const auto mpi = static_cast<std::size_t>(models.find_option("MPI"));
  const auto cuda = static_cast<std::size_t>(models.find_option("CUDA/HIP"));
  const auto cluster = static_cast<std::size_t>(res.find_option("Cluster"));
  const auto gpu = static_cast<std::size_t>(res.find_option("GPU"));
  for (std::size_t i = 0; i < t.row_count(); ++i) {
    EXPECT_GE(langs.selection_count(i), 1u);
    EXPECT_TRUE(langs.has(i, static_cast<std::size_t>(primary.code_at(i))));
    if (!models.is_missing(i)) {
      if (models.has(i, mpi)) {
        EXPECT_TRUE(res.has(i, cluster));
      }
      if (models.has(i, cuda)) {
        EXPECT_TRUE(res.has(i, gpu));
      }
      if (res.mask_at(i) == 0) {
        EXPECT_EQ(models.mask_at(i), 0u);
      }
    }
    if (!data::NumericColumn::is_missing(cores.at(i)) &&
        res.mask_at(i) == 0) {
      EXPECT_DOUBLE_EQ(cores.at(i), 1.0);
    }
  }
}

TEST(PanelTest, RatchetsPointTheRightWay) {
  const auto panel = synth::generate_panel(2000, 29);
  const auto python = trend::option_transitions(
      panel.wave2011, panel.wave2024, synth::col::kLanguages, "Python");
  EXPECT_GT(python.adopted, 5.0 * std::max(1.0, python.abandoned));
  EXPECT_LT(python.mcnemar.p_value, 0.001);

  const auto matlab = trend::option_transitions(
      panel.wave2011, panel.wave2024, synth::col::kLanguages, "MATLAB");
  EXPECT_GT(matlab.abandoned, matlab.adopted);  // the attrition channel
  EXPECT_LT(matlab.share_after(), matlab.share_before());

  const auto vcs = trend::option_transitions(
      panel.wave2011, panel.wave2024, synth::col::kSePractices,
      "Version control");
  EXPECT_GT(vcs.share_after(), 0.9);
}

TEST(PanelTest, RejectsEmptyPanel) {
  EXPECT_THROW(synth::generate_panel(0), rcr::Error);
}

// --- transitions on constructed data --------------------------------------------

TEST(TransitionsTest, CountsByHand) {
  data::Table w1, w2;
  auto& m1 = w1.add_multiselect("m", {"x"});
  auto& m2 = w2.add_multiselect("m", {"x"});
  // kept, adopted, abandoned, never, missing-pair.
  m1.push_mask(1); m2.push_mask(1);
  m1.push_mask(0); m2.push_mask(1);
  m1.push_mask(1); m2.push_mask(0);
  m1.push_mask(0); m2.push_mask(0);
  m1.push_missing(); m2.push_mask(1);
  const auto t = trend::option_transitions(w1, w2, "m", "x");
  EXPECT_DOUBLE_EQ(t.kept, 1.0);
  EXPECT_DOUBLE_EQ(t.adopted, 1.0);
  EXPECT_DOUBLE_EQ(t.abandoned, 1.0);
  EXPECT_DOUBLE_EQ(t.never, 1.0);
  EXPECT_DOUBLE_EQ(t.pairs(), 4.0);
  EXPECT_DOUBLE_EQ(t.share_before(), 0.5);
  EXPECT_DOUBLE_EQ(t.share_after(), 0.5);
}

TEST(TransitionsTest, RejectsUnpairedWaves) {
  data::Table w1, w2;
  w1.add_multiselect("m", {"x"}).push_mask(1);
  w2.add_multiselect("m", {"x"});
  EXPECT_THROW(trend::option_transitions(w1, w2, "m", "x"), rcr::Error);
}

}  // namespace
}  // namespace rcr
