#include <gtest/gtest.h>

#include <cmath>

#include "survey/impute.hpp"
#include "util/error.hpp"

namespace rcr::survey {
namespace {

// Two strata with clearly different answer distributions, plus holes.
data::Table make_table() {
  data::Table t;
  auto& stratum = t.add_categorical("field", {"a", "b"});
  auto& value = t.add_numeric("v");
  auto& choice = t.add_categorical("c", {"x", "y"});
  auto& multi = t.add_multiselect("m", {"p", "q"});
  // Stratum a: v = 1, c = x, m = {p}.
  for (int i = 0; i < 5; ++i) {
    stratum.push("a");
    value.push(1.0);
    choice.push("x");
    multi.push_labels({"p"});
  }
  // Stratum b: v = 9, c = y, m = {q}.
  for (int i = 0; i < 5; ++i) {
    stratum.push("b");
    value.push(9.0);
    choice.push("y");
    multi.push_labels({"q"});
  }
  // Holes, one per stratum per column.
  stratum.push("a");
  value.push_missing();
  choice.push_missing();
  multi.push_missing();
  stratum.push("b");
  value.push_missing();
  choice.push_missing();
  multi.push_missing();
  return t;
}

TEST(ImputeTest, FillsFromTheRightStratum) {
  auto t = make_table();
  EXPECT_EQ(missing_count(t, "v"), 2u);
  const auto numeric_report = hot_deck_impute(t, "v", "field");
  EXPECT_EQ(numeric_report.imputed_cells, 2u);
  EXPECT_EQ(numeric_report.unimputable_cells, 0u);
  EXPECT_DOUBLE_EQ(t.numeric("v").at(10), 1.0);  // stratum a donor
  EXPECT_DOUBLE_EQ(t.numeric("v").at(11), 9.0);  // stratum b donor
  EXPECT_EQ(missing_count(t, "v"), 0u);

  hot_deck_impute(t, "c", "field");
  EXPECT_EQ(t.categorical("c").label_at(10), "x");
  EXPECT_EQ(t.categorical("c").label_at(11), "y");

  hot_deck_impute(t, "m", "field");
  EXPECT_TRUE(t.multiselect("m").has(10, 0));   // p
  EXPECT_TRUE(t.multiselect("m").has(11, 1));   // q
}

TEST(ImputeTest, DeterministicForSeed) {
  auto a = make_table();
  auto b = make_table();
  hot_deck_impute(a, "v", "field", 77);
  hot_deck_impute(b, "v", "field", 77);
  for (std::size_t i = 0; i < a.row_count(); ++i)
    EXPECT_DOUBLE_EQ(a.numeric("v").at(i), b.numeric("v").at(i));
}

TEST(ImputeTest, MissingStratumFallsBackToGlobalPool) {
  data::Table t;
  auto& stratum = t.add_categorical("field", {"a", "b"});
  auto& value = t.add_numeric("v");
  stratum.push("a");
  value.push(4.0);
  stratum.push_missing();
  value.push_missing();
  const auto report = hot_deck_impute(t, "v", "field");
  EXPECT_EQ(report.imputed_cells, 1u);
  EXPECT_DOUBLE_EQ(t.numeric("v").at(1), 4.0);
}

TEST(ImputeTest, NoDonorsAnywhereIsReported) {
  data::Table t;
  auto& stratum = t.add_categorical("field", {"a", "b"});
  auto& value = t.add_numeric("v");
  stratum.push("a");
  value.push_missing();
  const auto report = hot_deck_impute(t, "v", "field");
  EXPECT_EQ(report.imputed_cells, 0u);
  EXPECT_EQ(report.unimputable_cells, 1u);
  EXPECT_EQ(missing_count(t, "v"), 1u);
}

TEST(ImputeTest, PreservesPresentValues) {
  auto t = make_table();
  const auto before = t.numeric("v").values();
  hot_deck_impute(t, "v", "field");
  for (std::size_t i = 0; i < before.size(); ++i) {
    if (!data::NumericColumn::is_missing(before[i])) {
      EXPECT_DOUBLE_EQ(t.numeric("v").at(i), before[i]);
    }
  }
}

TEST(MissingCountTest, CountsEveryKind) {
  const auto t = make_table();
  EXPECT_EQ(missing_count(t, "v"), 2u);
  EXPECT_EQ(missing_count(t, "c"), 2u);
  EXPECT_EQ(missing_count(t, "m"), 2u);
  EXPECT_EQ(missing_count(t, "field"), 0u);
}

}  // namespace
}  // namespace rcr::survey
