// Incremental engine contract: every registered query's answer after any
// sequence of appended blocks is bitwise-equal to a cold QueryEngine
// recompute over the concatenation of those blocks — for any block
// partition (including mid-shard resumes), any thread count, with the
// attached TableSketch advancing in lockstep, and with blocks sourced from
// the generator or streamed page-granularly from an on-disk snapshot.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "core/incr_study.hpp"
#include "core/study.hpp"
#include "data/snapshot.hpp"
#include "data/table.hpp"
#include "incr/engine.hpp"
#include "parallel/thread_pool.hpp"
#include "query/engine.hpp"
#include "stream/table_sketch.hpp"
#include "synth/domain.hpp"
#include "synth/generator.hpp"
#include "util/error.hpp"

namespace rcr::incr {
namespace {

std::uint64_t bits_of(double v) {
  std::uint64_t b = 0;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

void expect_crosstab_bits(const data::LabeledCrosstab& a,
                          const data::LabeledCrosstab& b) {
  ASSERT_EQ(a.row_labels, b.row_labels);
  ASSERT_EQ(a.col_labels, b.col_labels);
  ASSERT_EQ(a.counts.rows(), b.counts.rows());
  ASSERT_EQ(a.counts.cols(), b.counts.cols());
  for (std::size_t r = 0; r < a.counts.rows(); ++r)
    for (std::size_t c = 0; c < a.counts.cols(); ++c)
      ASSERT_EQ(bits_of(a.counts.at(r, c)), bits_of(b.counts.at(r, c)))
          << "cell (" << r << "," << c << ")";
}

void expect_shares_bits(const std::vector<data::OptionShare>& a,
                        const std::vector<data::OptionShare>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].label, b[i].label);
    ASSERT_EQ(bits_of(a[i].count), bits_of(b[i].count)) << a[i].label;
    ASSERT_EQ(bits_of(a[i].total), bits_of(b[i].total)) << a[i].label;
    ASSERT_EQ(bits_of(a[i].share.estimate), bits_of(b[i].share.estimate));
    ASSERT_EQ(bits_of(a[i].share.lo), bits_of(b[i].share.lo));
    ASSERT_EQ(bits_of(a[i].share.hi), bits_of(b[i].share.hi));
  }
}

void expect_counts_bits(const std::vector<double>& a,
                        const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    ASSERT_EQ(bits_of(a[i]), bits_of(b[i])) << "index " << i;
}

// The registration set exercised against every cold reference: all six
// servable kinds plus a weight-column crosstab and a numeric summary.
struct Ids {
  query::QueryId ct, ct_weighted, ct_multi, cat, opt, num, ans;
};

template <typename Engine>
Ids register_standard(Engine& engine) {
  Ids ids;
  ids.ct = engine.add_crosstab(synth::col::kField, synth::col::kCareerStage);
  ids.ct_weighted = engine.add_crosstab(
      synth::col::kField, synth::col::kCareerStage, synth::col::kDatasetGb);
  ids.ct_multi = engine.add_crosstab_multiselect(synth::col::kField,
                                                 synth::col::kLanguages);
  ids.cat = engine.add_category_shares(synth::col::kGpuUsage);
  ids.opt = engine.add_option_shares(synth::col::kSePractices);
  ids.num = engine.add_numeric_summary(synth::col::kYearsProgramming);
  ids.ans =
      engine.add_group_answered(synth::col::kField, synth::col::kLanguages);
  return ids;
}

// Compares every registered answer on `engine` against a cold QueryEngine
// run over `reference` (the concatenation of all appended blocks so far).
void expect_matches_cold(IncrementalEngine& engine, const Ids& ids,
                         const data::Table& reference,
                         parallel::ThreadPool* pool = nullptr) {
  query::QueryEngine cold(reference);
  const Ids cold_ids = register_standard(cold);
  cold.run(pool);
  expect_crosstab_bits(engine.result(ids.ct).crosstab,
                       cold.raw_result(cold_ids.ct).crosstab);
  expect_crosstab_bits(engine.result(ids.ct_weighted).crosstab,
                       cold.raw_result(cold_ids.ct_weighted).crosstab);
  expect_crosstab_bits(engine.result(ids.ct_multi).crosstab,
                       cold.raw_result(cold_ids.ct_multi).crosstab);
  expect_shares_bits(engine.result(ids.cat).shares,
                     cold.raw_result(cold_ids.cat).shares);
  expect_shares_bits(engine.result(ids.opt).shares,
                     cold.raw_result(cold_ids.opt).shares);
  const auto& ni = engine.result(ids.num).numeric;
  const auto& nc = cold.raw_result(cold_ids.num).numeric;
  ASSERT_EQ(bits_of(ni.count), bits_of(nc.count));
  ASSERT_EQ(bits_of(ni.sum), bits_of(nc.sum));
  ASSERT_EQ(bits_of(ni.min), bits_of(nc.min));
  ASSERT_EQ(bits_of(ni.max), bits_of(nc.max));
  expect_counts_bits(engine.result(ids.ans).group_counts,
                     cold.raw_result(cold_ids.ans).group_counts);
}

data::Table test_wave(std::size_t n, std::uint64_t seed = 11) {
  return synth::generate_wave({synth::Wave::k2024, n, seed});
}

TEST(IncrementalEngineTest, RegistrationSealsOnFirstAppend) {
  const data::Table wave = test_wave(300);
  IncrementalEngine engine(wave);
  register_standard(engine);
  engine.append_block(wave.slice(0, 100));
  EXPECT_THROW(engine.add_category_shares(synth::col::kGpuUsage), Error);
  EXPECT_THROW(engine.add_option_shares(synth::col::kLanguages), Error);
}

TEST(IncrementalEngineTest, ExternalWeightSpanRejected) {
  const data::Table wave = test_wave(50);
  IncrementalEngine engine(wave);
  const std::vector<double> w(50, 1.0);
  EXPECT_THROW(
      engine.add_weighted_option_share(synth::col::kLanguages, "Python", w),
      Error);
}

TEST(IncrementalEngineTest, SchemaMismatchRejected) {
  const data::Table wave = test_wave(100);
  IncrementalEngine engine(wave);
  engine.add_category_shares(synth::col::kGpuUsage);
  data::Table other;
  other.add_numeric("x");
  EXPECT_THROW(engine.append_block(other), Error);
}

TEST(IncrementalEngineTest, ValidatesSpecsAgainstSchema) {
  const data::Table wave = test_wave(10);
  IncrementalEngine engine(wave);
  EXPECT_THROW(engine.add_category_shares("no_such_column"), Error);
  EXPECT_THROW(engine.add_numeric_summary(synth::col::kField), Error);
}

TEST(IncrementalEngineTest, ZeroRowBlockIsANoOp) {
  const data::Table wave = test_wave(500);
  IncrementalEngine engine(wave);
  const Ids ids = register_standard(engine);
  engine.append_block(wave.slice(0, 500));
  engine.append_block(wave.slice(0, 0));
  EXPECT_EQ(engine.row_count(), 500u);
  expect_matches_cold(engine, ids, wave);
}

// The core contract: every cut, over an adversarial block partition that
// starts mid-shard, crosses shard boundaries, and lands exactly on them,
// matches the cold engine bit for bit.
TEST(IncrementalEngineTest, EveryCutMatchesColdEngineBitwise) {
  const std::size_t n = 10000;  // spans 3 fixed-stride shards
  const data::Table wave = test_wave(n);
  IncrementalEngine engine(wave);
  const Ids ids = register_standard(engine);

  const std::size_t sizes[] = {1, 7, 497, 3591, 4096, 953, 855};
  std::size_t consumed = 0, i = 0;
  while (consumed < n) {
    const std::size_t take = std::min(sizes[i++ % 7], n - consumed);
    engine.append_block(wave.slice(consumed, consumed + take));
    consumed += take;
    ASSERT_EQ(engine.row_count(), consumed);
    expect_matches_cold(engine, ids, wave.slice(0, consumed));
  }
}

TEST(IncrementalEngineTest, PoolSizeIsInvariantAtEveryCut) {
  const std::size_t n = 12000;
  const data::Table wave = test_wave(n, 23);
  parallel::ThreadPool pool2(2), pool8(8);

  IncrementalEngine serial(wave), par2(wave), par8(wave);
  const Ids ids = register_standard(serial);
  register_standard(par2);
  register_standard(par8);

  for (std::size_t lo = 0; lo < n; lo += 1000) {
    const data::Table block = wave.slice(lo, std::min(n, lo + 1000));
    serial.append_block(block, nullptr);
    par2.append_block(block, &pool2);
    par8.append_block(block, &pool8);
    expect_crosstab_bits(serial.result(ids.ct_weighted).crosstab,
                         par2.result(ids.ct_weighted).crosstab);
    expect_crosstab_bits(serial.result(ids.ct_weighted).crosstab,
                         par8.result(ids.ct_weighted).crosstab);
    expect_shares_bits(serial.result(ids.opt).shares,
                       par8.result(ids.opt).shares);
  }
  expect_matches_cold(par8, ids, wave, &pool8);
}

TEST(IncrementalEngineTest, AttachedSketchAdvancesInLockstep) {
  const std::size_t n = 3000;
  const data::Table wave = test_wave(n, 5);

  stream::TableSketchOptions options;
  options.crosstabs = {{synth::col::kField, synth::col::kLanguages}};
  options.reservoir_column = synth::col::kDatasetGb;

  IncrementalEngine engine(wave);
  engine.add_category_shares(synth::col::kGpuUsage);
  engine.attach_sketch(options);

  stream::TableSketch reference(wave, options);
  for (std::size_t lo = 0; lo < n; lo += 701) {
    const data::Table block = wave.slice(lo, std::min(n, lo + 701));
    engine.append_block(block);
    reference.ingest(block, lo);
  }

  const stream::TableSketch& sketch = engine.sketch();
  EXPECT_EQ(sketch.rows(), reference.rows());
  EXPECT_EQ(sketch.blocks(), reference.blocks());
  expect_counts_bits(sketch.category_counts(synth::col::kGpuUsage),
                     reference.category_counts(synth::col::kGpuUsage));
  expect_counts_bits(sketch.option_counts(synth::col::kLanguages),
                     reference.option_counts(synth::col::kLanguages));
  ASSERT_EQ(bits_of(sketch.answered(synth::col::kLanguages)),
            bits_of(reference.answered(synth::col::kLanguages)));
}

TEST(IncrementalEngineTest, SketchRequiresAttachBeforeAppend) {
  const data::Table wave = test_wave(20);
  IncrementalEngine engine(wave);
  EXPECT_THROW(engine.sketch(), Error);
  engine.append_block(wave);
  EXPECT_THROW(engine.attach_sketch(), Error);
}

// Snapshot pages stream through for_each_snapshot_block without ever
// materializing the whole table, and the streamed blocks drive the
// incremental engine to the same bits as the cold engine on the full wave.
TEST(IncrementalEngineTest, SnapshotBlocksStreamToTheSameBits) {
  const std::size_t n = 5000;
  const data::Table wave = test_wave(n, 17);
  const std::string path =
      (std::filesystem::temp_directory_path() / "incr_test_snapshot.rcr")
          .string();
  data::SnapshotWriteOptions write_options;
  write_options.page_rows = 777;  // ragged page grid -> ragged blocks
  data::write_snapshot(wave, path, write_options);

  IncrementalEngine engine(wave);
  const Ids ids = register_standard(engine);
  std::size_t blocks = 0, rows_seen = 0;
  const std::size_t total = data::for_each_snapshot_block(
      path, [&](const data::Table& block, std::size_t first_row) {
        ASSERT_EQ(first_row, rows_seen);  // in order, gap-free
        ASSERT_GT(block.row_count(), 0u);
        ASSERT_LE(block.row_count(), 777u);
        engine.append_block(block);
        rows_seen += block.row_count();
        ++blocks;
      });
  std::filesystem::remove(path);

  EXPECT_EQ(total, n);
  EXPECT_EQ(rows_seen, n);
  EXPECT_GE(blocks, n / 777);
  expect_matches_cold(engine, ids, wave);
}

// The continuously-ingesting study: its live aggregates equal Study's cold
// fused scan of the same wave at the final cut, and every intermediate cut
// is consistent (denominators equal the rows ingested so far).
TEST(IncrStudyTest, FinalCutMatchesColdStudyAggregates) {
  core::StudyConfig cold_config;
  cold_config.n_2024 = 650;
  cold_config.seed = 7;
  const core::Study study(cold_config);

  core::IncrStudyConfig config;
  config.wave = synth::Wave::k2024;
  config.respondents = 650;
  config.seed = 7 ^ 0xA5A5A5A5ULL;  // Study's wave-2024 seed derivation
  config.block_rows = 97;
  core::IncrStudy incremental(config);

  std::size_t cuts = 0;
  std::size_t last_rows = 0;
  const std::size_t rows =
      incremental.run([&](const core::WaveAggregates& cut, std::size_t seen) {
        ++cuts;
        ASSERT_GT(seen, last_rows);
        last_rows = seen;
        // Denominator consistency at every cut: no multiselect answer count
        // can exceed the rows ingested so far.
        for (const auto& share : cut.languages) ASSERT_LE(share.total, seen);
      });

  EXPECT_EQ(rows, 650u);
  EXPECT_EQ(cuts, (650 + 96) / 97);
  EXPECT_EQ(incremental.blocks(), cuts);

  const core::WaveAggregates& live = incremental.aggregates();
  const core::WaveAggregates& cold = study.aggregates2024();
  expect_crosstab_bits(live.field_by_career, cold.field_by_career);
  expect_crosstab_bits(live.field_by_languages, cold.field_by_languages);
  expect_crosstab_bits(live.field_by_se, cold.field_by_se);
  expect_shares_bits(live.languages, cold.languages);
  expect_shares_bits(live.se_practices, cold.se_practices);
  expect_shares_bits(live.parallel_resources, cold.parallel_resources);
  expect_shares_bits(live.tools_aware, cold.tools_aware);
  expect_shares_bits(live.tools_used, cold.tools_used);
  expect_shares_bits(live.gpu_usage, cold.gpu_usage);
  expect_counts_bits(live.field_answered_languages,
                     cold.field_answered_languages);
  expect_counts_bits(live.field_answered_se, cold.field_answered_se);
}

}  // namespace
}  // namespace rcr::incr
