#include <gtest/gtest.h>

#include <cmath>

#include "survey/likert.hpp"
#include "survey/schema.hpp"
#include "survey/weighting.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rcr::survey {
namespace {

Questionnaire make_questionnaire() {
  return Questionnaire(
      "demo",
      {Question::single_choice("dept", "Department", {"cs", "bio"}, true),
       Question::multi_select("tools", "Tools", {"git", "make"}),
       Question::likert("happy", "Happiness", 5),
       Question::numeric("hours", "Hours per week")});
}

TEST(SchemaTest, MakeTableMirrorsQuestions) {
  const auto q = make_questionnaire();
  const auto t = q.make_table();
  EXPECT_EQ(t.column_count(), 4u);
  EXPECT_EQ(t.kind("dept"), data::ColumnKind::kCategorical);
  EXPECT_TRUE(t.categorical("dept").frozen());
  EXPECT_EQ(t.kind("tools"), data::ColumnKind::kMultiSelect);
  EXPECT_EQ(t.kind("happy"), data::ColumnKind::kNumeric);
  EXPECT_EQ(t.kind("hours"), data::ColumnKind::kNumeric);
}

TEST(SchemaTest, QuestionLookup) {
  const auto q = make_questionnaire();
  EXPECT_TRUE(q.has_question("happy"));
  EXPECT_FALSE(q.has_question("nope"));
  EXPECT_EQ(q.question("happy").scale_points, 5);
  EXPECT_THROW(q.question("nope"), rcr::Error);
}

TEST(SchemaTest, RejectsBadDefinitions) {
  EXPECT_THROW(Question::single_choice("x", "t", {"only"}), rcr::Error);
  EXPECT_THROW(Question::likert("x", "t", 1), rcr::Error);
  EXPECT_THROW(Question::likert("x", "t", 20), rcr::Error);
  EXPECT_THROW(Questionnaire("q", {}), rcr::Error);
  EXPECT_THROW(
      Questionnaire("q", {Question::numeric("a", "t"),
                          Question::numeric("a", "t")}),
      rcr::Error);
}

TEST(ValidationTest, CleanTableHasNoIssues) {
  const auto q = make_questionnaire();
  auto t = q.make_table();
  t.categorical("dept").push("cs");
  t.multiselect("tools").push_labels({"git"});
  t.numeric("happy").push(4.0);
  t.numeric("hours").push(10.5);
  EXPECT_TRUE(validate_responses(q, t).empty());
}

TEST(ValidationTest, CatchesEveryIssueKind) {
  const auto q = make_questionnaire();
  auto t = q.make_table();
  t.categorical("dept").push_missing();       // required missing
  t.multiselect("tools").push_missing();      // optional: fine
  t.numeric("happy").push(9.0);               // out of Likert scale
  t.numeric("hours").push(-1.0);              // negative numeric
  const auto issues = validate_responses(q, t);
  ASSERT_EQ(issues.size(), 3u);
  EXPECT_EQ(issues[0].question_id, "dept");
  EXPECT_EQ(issues[1].question_id, "happy");
  EXPECT_EQ(issues[2].question_id, "hours");
}

TEST(ValidationTest, NonIntegerLikertFlagged) {
  const auto q = make_questionnaire();
  auto t = q.make_table();
  t.categorical("dept").push("cs");
  t.multiselect("tools").push_mask(0);
  t.numeric("happy").push(3.5);
  t.numeric("hours").push(0.0);
  const auto issues = validate_responses(q, t);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].question_id, "happy");
}

// --- raking --------------------------------------------------------------------

data::Table skewed_sample(std::size_t n, double cs_share, rcr::Rng& rng) {
  data::Table t;
  auto& dept = t.add_categorical("dept", {"cs", "bio"});
  auto& stage = t.add_categorical("stage", {"grad", "faculty"});
  for (std::size_t i = 0; i < n; ++i) {
    dept.push(rng.bernoulli(cs_share) ? "cs" : "bio");
    stage.push(rng.bernoulli(0.7) ? "grad" : "faculty");
  }
  return t;
}

TEST(RakingTest, ConvergesToTargets) {
  rcr::Rng rng(5);
  auto t = skewed_sample(2000, 0.8, rng);  // sample is 80% cs
  const std::vector<MarginTarget> targets = {
      {"dept", {{"cs", 0.5}, {"bio", 0.5}}},
      {"stage", {{"grad", 0.6}, {"faculty", 0.4}}}};
  const auto r = rake_weights(t, targets);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(r.max_residual, 1e-6);
  EXPECT_NEAR(weighted_category_share(t, "dept", "cs", r.weights), 0.5, 1e-3);
  EXPECT_NEAR(weighted_category_share(t, "stage", "grad", r.weights), 0.6,
              1e-3);
  EXPECT_GT(r.design_effect, 1.0);
  EXPECT_LT(r.effective_n, 2000.0);
}

TEST(RakingTest, UniformSampleNeedsNoAdjustment) {
  rcr::Rng rng(6);
  auto t = skewed_sample(3000, 0.5, rng);
  const std::vector<MarginTarget> targets = {
      {"dept", {{"cs", 0.5}, {"bio", 0.5}}}};
  const auto r = rake_weights(t, targets);
  EXPECT_TRUE(r.converged);
  // Weights should stay near 1 and design effect near 1.
  EXPECT_LT(r.design_effect, 1.01);
}

TEST(RakingTest, MissingRowsGetUnitWeight) {
  data::Table t;
  auto& dept = t.add_categorical("dept", {"cs", "bio"});
  dept.push("cs");
  dept.push_missing();
  dept.push("bio");
  const std::vector<MarginTarget> targets = {
      {"dept", {{"cs", 0.5}, {"bio", 0.5}}}};
  const auto r = rake_weights(t, targets);
  EXPECT_DOUBLE_EQ(r.weights[1], 1.0);
}

TEST(RakingTest, RejectsBadTargets) {
  rcr::Rng rng(7);
  auto t = skewed_sample(100, 0.5, rng);
  EXPECT_THROW(rake_weights(t, {}), rcr::Error);
  EXPECT_THROW(
      rake_weights(t, {{"dept", {{"cs", 0.5}, {"nope", 0.5}}}}), rcr::Error);
  // Category present in data but absent from targets.
  EXPECT_THROW(rake_weights(t, {{"dept", {{"cs", 1.0}}}}), rcr::Error);
  EXPECT_THROW(rake_weights(t, {{"dept", {{"cs", -0.5}, {"bio", 0.5}}}}),
               rcr::Error);
}

// Property: raking converges for random target mixes.
class RakingPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RakingPropertyTest, ConvergesForRandomTargets) {
  rcr::Rng rng(GetParam());
  auto t = skewed_sample(800, rng.uniform(0.2, 0.8), rng);
  const double cs = rng.uniform(0.2, 0.8);
  const double grad = rng.uniform(0.2, 0.8);
  const std::vector<MarginTarget> targets = {
      {"dept", {{"cs", cs}, {"bio", 1.0 - cs}}},
      {"stage", {{"grad", grad}, {"faculty", 1.0 - grad}}}};
  const auto r = rake_weights(t, targets);
  EXPECT_TRUE(r.converged) << "seed " << GetParam();
  EXPECT_NEAR(weighted_category_share(t, "dept", "cs", r.weights), cs, 0.01);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RakingPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 11));

// --- Likert --------------------------------------------------------------------

TEST(LikertTest, SummaryAndTopBox) {
  data::Table t;
  auto& c = t.add_numeric("q");
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0, 5.0, 4.0, 3.0}) c.push(v);
  c.push_missing();
  const auto s = summarize_likert(t, "q", 5);
  EXPECT_EQ(s.answered, 8u);
  EXPECT_NEAR(s.mean, 27.0 / 8.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.distribution[4], 0.25);  // two fives of eight
  EXPECT_EQ(s.top_box_from, 4);
  EXPECT_NEAR(s.top_box.estimate, 0.5, 1e-12);
}

TEST(LikertTest, RejectsUnvalidatedValues) {
  data::Table t;
  t.add_numeric("q").push(7.0);
  EXPECT_THROW(summarize_likert(t, "q", 5), rcr::Error);
}

}  // namespace
}  // namespace rcr::survey
