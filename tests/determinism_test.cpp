// The reproducibility contract, pinned: a single master seed reproduces
// every parallel computation byte-for-byte, on any pool size, run after
// run. These are the assertions the bootstrap/permutation headers promise
// and the survey's reproducibility discussion depends on (serial/parallel
// equivalence is the whole point of index-derived replicate streams).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "data/table.hpp"
#include "incr/engine.hpp"
#include "parallel/algorithms.hpp"
#include "parallel/thread_pool.hpp"
#include "query/engine.hpp"
#include "simd/dispatch.hpp"
#include "simd/philox.hpp"
#include "stats/bootstrap.hpp"
#include "stats/descriptive.hpp"
#include "stats/permutation.hpp"
#include "stream/table_sketch.hpp"
#include "util/rng.hpp"

namespace rcr {
namespace {

std::uint64_t bits_of(double v) {
  std::uint64_t b = 0;
  std::memcpy(&b, &v, sizeof(v));
  return b;
}

std::vector<double> noisy_data(std::size_t n, std::uint64_t seed) {
  std::vector<double> data(n);
  Rng rng(seed);
  // Full-mantissa values so any reassociation of the sum changes bits.
  for (auto& v : data) v = rng.normal() * 1e3 + rng.next_double();
  return data;
}

// Acceptance check from the determinism fix: a 1e6-element floating-point
// reduction is bitwise identical for 1, 2, and 8 threads across 3 runs.
TEST(DeterminismTest, MillionElementReduceIsBitwiseStable) {
  const std::size_t n = 1000000;
  const std::vector<double> data = noisy_data(n, 2024);

  const auto reduce_sum = [&](parallel::ThreadPool& pool,
                              parallel::Schedule schedule) {
    return parallel::parallel_reduce<double>(
        pool, 0, n, 0.0,
        [&](std::size_t lo, std::size_t hi) {
          double s = 0.0;
          for (std::size_t i = lo; i < hi; ++i) s += data[i];
          return s;
        },
        [](double a, double b) { return a + b; }, {schedule, 0});
  };

  parallel::ThreadPool reference_pool(1);
  const std::uint64_t reference =
      bits_of(reduce_sum(reference_pool, parallel::Schedule::kStatic));

  for (const std::size_t threads : {1u, 2u, 8u}) {
    parallel::ThreadPool pool(threads);
    for (int run = 0; run < 3; ++run) {
      for (const auto schedule :
           {parallel::Schedule::kStatic, parallel::Schedule::kDynamic}) {
        EXPECT_EQ(bits_of(reduce_sum(pool, schedule)), reference)
            << "threads=" << threads << " run=" << run << " schedule="
            << (schedule == parallel::Schedule::kStatic ? "static"
                                                        : "dynamic");
      }
    }
  }
}

TEST(DeterminismTest, BootstrapPooledMatchesSerialByteForByte) {
  const std::vector<double> data = noisy_data(400, 99);
  stats::BootstrapOptions serial_opts;
  serial_opts.replicates = 500;
  serial_opts.seed = 31;
  serial_opts.compute_bca = true;
  const auto serial = stats::bootstrap(
      data, [](std::span<const double> x) { return stats::mean(x); },
      serial_opts);

  for (const std::size_t threads : {1u, 2u, 8u}) {
    parallel::ThreadPool pool(threads);
    stats::BootstrapOptions opts = serial_opts;
    opts.pool = &pool;
    const auto pooled = stats::bootstrap(
        data, [](std::span<const double> x) { return stats::mean(x); }, opts);

    ASSERT_EQ(pooled.replicates.size(), serial.replicates.size());
    for (std::size_t i = 0; i < serial.replicates.size(); ++i) {
      ASSERT_EQ(bits_of(pooled.replicates[i]), bits_of(serial.replicates[i]))
          << "threads=" << threads << " replicate " << i;
    }
    EXPECT_EQ(bits_of(pooled.estimate), bits_of(serial.estimate));
    EXPECT_EQ(bits_of(pooled.std_error), bits_of(serial.std_error));
    EXPECT_EQ(bits_of(pooled.percentile_ci.lo),
              bits_of(serial.percentile_ci.lo));
    EXPECT_EQ(bits_of(pooled.percentile_ci.hi),
              bits_of(serial.percentile_ci.hi));
    EXPECT_EQ(bits_of(pooled.bca_ci.lo), bits_of(serial.bca_ci.lo));
    EXPECT_EQ(bits_of(pooled.bca_ci.hi), bits_of(serial.bca_ci.hi));
  }
}

TEST(DeterminismTest, PermutationPooledMatchesSerialByteForByte) {
  const std::vector<double> x = noisy_data(120, 5);
  std::vector<double> y = noisy_data(150, 6);
  for (auto& v : y) v += 25.0;  // real shift so p-values are interesting

  stats::PermutationOptions serial_opts;
  serial_opts.permutations = 600;
  serial_opts.seed = 77;
  const auto serial =
      stats::permutation_test_mean_diff(x, y, serial_opts);

  for (const std::size_t threads : {1u, 2u, 8u}) {
    parallel::ThreadPool pool(threads);
    stats::PermutationOptions opts = serial_opts;
    opts.pool = &pool;
    const auto pooled = stats::permutation_test_mean_diff(x, y, opts);
    EXPECT_EQ(bits_of(pooled.observed), bits_of(serial.observed))
        << "threads=" << threads;
    EXPECT_EQ(bits_of(pooled.p_value), bits_of(serial.p_value))
        << "threads=" << threads;
    EXPECT_EQ(bits_of(pooled.p_greater), bits_of(serial.p_greater))
        << "threads=" << threads;
    EXPECT_EQ(bits_of(pooled.p_less), bits_of(serial.p_less))
        << "threads=" << threads;
  }
}

// The batched fast path honors the same contract: bootstrap_mean pooled at
// any width reproduces the serial run byte for byte (the per-replicate
// index batches derive from the replicate seed alone, so thread assignment
// cannot leak into the draws).
TEST(DeterminismTest, BootstrapMeanFastPathPooledMatchesSerial) {
  const std::vector<double> data = noisy_data(350, 123);
  stats::BootstrapOptions serial_opts;
  serial_opts.replicates = 400;
  serial_opts.seed = 51;
  serial_opts.compute_bca = true;
  const auto serial = stats::bootstrap_mean(data, serial_opts);

  for (const std::size_t threads : {1u, 2u, 8u}) {
    parallel::ThreadPool pool(threads);
    stats::BootstrapOptions opts = serial_opts;
    opts.pool = &pool;
    const auto pooled = stats::bootstrap_mean(data, opts);
    ASSERT_EQ(pooled.replicates.size(), serial.replicates.size());
    for (std::size_t i = 0; i < serial.replicates.size(); ++i)
      ASSERT_EQ(bits_of(pooled.replicates[i]), bits_of(serial.replicates[i]))
          << "threads=" << threads << " replicate " << i;
    EXPECT_EQ(bits_of(pooled.bca_ci.lo), bits_of(serial.bca_ci.lo));
    EXPECT_EQ(bits_of(pooled.bca_ci.hi), bits_of(serial.bca_ci.hi));
  }
}

// The fused query engine carries the same contract: a multi-shard weighted
// batch fingerprints identically for the serial walk and pools of 1, 2, and
// 8 threads, run after run. (The shard layout is a pure function of the row
// count and the merge runs in shard index order, so thread scheduling can
// never reach the bits.)
TEST(DeterminismTest, QueryEngineFingerprintIsPoolSizeInvariant) {
  const std::size_t n = 20000;  // 5 shards at the engine's 4096-row grain
  data::Table t;
  auto& group = t.add_categorical("group", {"g0", "g1", "g2", "g3"});
  auto& picks = t.add_multiselect("picks", {"p0", "p1", "p2", "p3", "p4"});
  auto& value = t.add_numeric("value");
  auto& weight = t.add_numeric("weight");
  Rng rng(606);
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.next_double() < 0.05) group.push_missing();
    else group.push_code(static_cast<std::int32_t>(rng.next_below(4)));
    if (rng.next_double() < 0.08) picks.push_missing();
    else picks.push_mask(rng.next_u64() & 0x1FULL);
    value.push(rng.normal() * 1e3 + rng.next_double());
    // Full-mantissa weights: any reassociation of a weighted sum would
    // change bits, so the fingerprint is sensitive to scheduling leaks.
    weight.push(rng.next_double() * 2.0 + 0.25);
  }
  const std::span<const double> ext = weight.values();

  const auto fingerprint = [&](parallel::ThreadPool* pool) {
    query::QueryEngine engine(t);
    const auto ct = engine.add_crosstab("group", "group",
                                        std::optional<std::string>{"weight"});
    const auto ms = engine.add_crosstab_multiselect("group", "picks");
    const auto os = engine.add_option_shares("picks");
    const auto ws = engine.add_weighted_option_share("picks", "p2", ext);
    const auto ns = engine.add_numeric_summary("value");
    engine.run(pool);

    std::uint64_t fp = 0;
    const auto fold = [&](double v) {
      fp = fp * 0x9E3779B97F4A7C15ULL + bits_of(v);
    };
    for (const auto* x : {&engine.crosstab(ct), &engine.crosstab(ms)})
      for (std::size_t r = 0; r < x->counts.rows(); ++r)
        for (std::size_t c = 0; c < x->counts.cols(); ++c)
          fold(x->counts.at(r, c));
    for (const auto& s : engine.shares(os)) {
      fold(s.count);
      fold(s.total);
      fold(s.share.lo);
      fold(s.share.hi);
    }
    fold(engine.weighted_share(ws).count);
    fold(engine.weighted_share(ws).share.estimate);
    fold(engine.numeric(ns).sum);
    fold(engine.numeric(ns).min);
    fold(engine.numeric(ns).max);
    return fp;
  };

  const std::uint64_t reference = fingerprint(nullptr);
  EXPECT_EQ(fingerprint(nullptr), reference);  // serial is stable
  for (const std::size_t threads : {1u, 2u, 8u}) {
    parallel::ThreadPool pool(threads);
    for (int run = 0; run < 3; ++run)
      EXPECT_EQ(fingerprint(&pool), reference)
          << "threads=" << threads << " run=" << run;
  }
}

// --- SIMD width invariance --------------------------------------------------
// The rcr::simd kernels promise bits identical to their scalar (width-1)
// instantiation. These tests force the scalar path, record a fingerprint,
// then re-run at the native width (whatever the build and CPU provide —
// on a -DRCR_SIMD_WIDTH=1 build both passes are scalar and the assertions
// hold trivially) and at every pool size, so a vectorization bug can never
// hide behind thread scheduling.

// Pins dispatch to one ISA for a scope.
struct ForcedIsa {
  explicit ForcedIsa(simd::Isa isa) { simd::force_isa(isa); }
  ~ForcedIsa() { simd::clear_isa_override(); }
};

TEST(DeterminismTest, QueryEngineFingerprintIsSimdWidthInvariant) {
  const std::size_t n = 20000;
  data::Table t;
  auto& group = t.add_categorical("group", {"g0", "g1", "g2", "g3"});
  auto& picks = t.add_multiselect("picks", {"p0", "p1", "p2", "p3", "p4"});
  auto& value = t.add_numeric("value");
  auto& weight = t.add_numeric("weight");
  Rng rng(909);
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.next_double() < 0.05) group.push_missing();
    else group.push_code(static_cast<std::int32_t>(rng.next_below(4)));
    if (rng.next_double() < 0.08) picks.push_missing();
    else picks.push_mask(rng.next_u64() & 0x1FULL);
    value.push(rng.normal() * 1e3 + rng.next_double());
    weight.push(rng.next_double() * 2.0 + 0.25);
  }

  const auto fingerprint = [&](parallel::ThreadPool* pool) {
    query::QueryEngine engine(t);
    const auto ct = engine.add_crosstab_multiselect("group", "picks");
    const auto ctw = engine.add_crosstab_multiselect(
        "group", "picks", std::optional<std::string>{"weight"});
    const auto os = engine.add_option_shares("picks");
    engine.run(pool);

    std::uint64_t fp = 0;
    const auto fold = [&](double v) {
      fp = fp * 0x9E3779B97F4A7C15ULL + bits_of(v);
    };
    for (const auto* x : {&engine.crosstab(ct), &engine.crosstab(ctw)})
      for (std::size_t r = 0; r < x->counts.rows(); ++r)
        for (std::size_t c = 0; c < x->counts.cols(); ++c)
          fold(x->counts.at(r, c));
    for (const auto& s : engine.shares(os)) {
      fold(s.count);
      fold(s.total);
      fold(s.share.estimate);
    }
    return fp;
  };

  std::uint64_t reference = 0;
  {
    ForcedIsa scalar(simd::Isa::kScalar);
    reference = fingerprint(nullptr);
  }
  // Native width (no override), serial and pooled.
  EXPECT_EQ(fingerprint(nullptr), reference) << "native serial";
  for (const std::size_t threads : {1u, 2u, 8u}) {
    parallel::ThreadPool pool(threads);
    EXPECT_EQ(fingerprint(&pool), reference)
        << "native width, threads=" << threads;
  }
}

TEST(DeterminismTest, TableSketchFingerprintIsSimdWidthInvariant) {
  // Two blocks with a non-multiple-of-any-lane-width row count each, so the
  // batched CM/HLL inserts exercise their masked tails.
  const auto make_block = [](std::size_t rows, std::uint64_t seed) {
    data::Table b;
    auto& field = b.add_categorical("field", {"f0", "f1", "f2"});
    auto& langs = b.add_multiselect("langs", {"l0", "l1", "l2", "l3"});
    auto& score = b.add_numeric("score");
    Rng rng(seed);
    for (std::size_t i = 0; i < rows; ++i) {
      if (rng.next_double() < 0.06) field.push_missing();
      else field.push_code(static_cast<std::int32_t>(rng.next_below(3)));
      if (rng.next_double() < 0.09) langs.push_missing();
      else langs.push_mask(rng.next_u64() & 0xFULL);
      if (rng.next_double() < 0.04) score.push_missing();
      else score.push(rng.normal() * 7.0 + 20.0);
    }
    return b;
  };
  const data::Table block_a = make_block(1003, 1);
  const data::Table block_b = make_block(517, 2);

  const auto fingerprint = [&] {
    stream::TableSketch sketch(block_a);
    sketch.ingest(block_a, 0);
    sketch.ingest(block_b, block_a.row_count());

    std::uint64_t fp = 0;
    const auto fold = [&](double v) {
      fp = fp * 0x9E3779B97F4A7C15ULL + bits_of(v);
    };
    const auto& cms = sketch.label_cms();
    fold(cms.total_weight());
    const std::vector<std::pair<std::string, std::vector<std::string>>>
        domains = {{"field", {"f0", "f1", "f2"}},
                   {"langs", {"l0", "l1", "l2", "l3"}}};
    for (const auto& [column, labels] : domains)
      for (const auto& label : labels)
        fold(cms.estimate(stream::TableSketch::label_key(column, label)));
    fold(sketch.distinct().estimate());
    for (const double c : sketch.category_counts("field")) fold(c);
    for (const double c : sketch.option_counts("langs")) fold(c);
    return fp;
  };

  std::uint64_t reference = 0;
  {
    ForcedIsa scalar(simd::Isa::kScalar);
    reference = fingerprint();
  }
  EXPECT_EQ(fingerprint(), reference) << "native width";
}

TEST(DeterminismTest, PhiloxFillsAreSimdWidthInvariant) {
  // 1003 draws from position 1: a half-block head, a vector body, and a
  // block tail that is a multiple of no lane width — the maskstore path.
  std::vector<std::uint64_t> want_u64(1003);
  std::vector<double> want_f64(1003);
  {
    ForcedIsa scalar(simd::Isa::kScalar);
    simd::Philox g(2024, 3);
    g.seek(1);
    g.fill_u64(want_u64);
    simd::Philox h(2024, 3);
    h.seek(1);
    h.fill_double(want_f64);
  }
  std::vector<std::uint64_t> got_u64(1003);
  std::vector<double> got_f64(1003);
  simd::Philox g(2024, 3);
  g.seek(1);
  g.fill_u64(got_u64);
  simd::Philox h(2024, 3);
  h.seek(1);
  h.fill_double(got_f64);
  EXPECT_EQ(got_u64, want_u64);
  for (std::size_t i = 0; i < want_f64.size(); ++i)
    ASSERT_EQ(bits_of(got_f64[i]), bits_of(want_f64[i])) << "i=" << i;
}

// --- Incremental delta-merge ------------------------------------------------
// The incremental engine's O(delta) appends carry the full contract: at
// EVERY block cut the live results fingerprint-match a cold QueryEngine
// recompute over all rows so far, for thread counts 0/1/2/8 and with the
// SIMD kernels forced scalar (the partial scans ride the same kernels the
// cold engine does, so a width or scheduling leak would surface here).
TEST(DeterminismTest, IncrementalCutsMatchColdRecomputeAcrossPoolsAndWidths) {
  const std::size_t n = 20000;  // 5 fixed-stride shards
  data::Table t;
  auto& group = t.add_categorical("group", {"g0", "g1", "g2", "g3"});
  auto& picks = t.add_multiselect("picks", {"p0", "p1", "p2", "p3", "p4"});
  auto& value = t.add_numeric("value");
  auto& weight = t.add_numeric("weight");
  Rng rng(1212);
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.next_double() < 0.05) group.push_missing();
    else group.push_code(static_cast<std::int32_t>(rng.next_below(4)));
    if (rng.next_double() < 0.08) picks.push_missing();
    else picks.push_mask(rng.next_u64() & 0x1FULL);
    value.push(rng.normal() * 1e3 + rng.next_double());
    weight.push(rng.next_double() * 2.0 + 0.25);
  }

  // Registration shared by both engines; the fingerprint folds every
  // result double of the batch.
  const auto register_batch = [](auto& engine) {
    engine.add_crosstab("group", "group",
                        std::optional<std::string>{"weight"});
    engine.add_crosstab_multiselect("group", "picks");
    engine.add_option_shares("picks");
    engine.add_numeric_summary("value");
  };
  const auto fold_results = [&](const query::QueryResult& ct,
                                const query::QueryResult& ms,
                                const query::QueryResult& os,
                                const query::QueryResult& ns) {
    std::uint64_t fp = 0;
    const auto fold = [&](double v) {
      fp = fp * 0x9E3779B97F4A7C15ULL + bits_of(v);
    };
    for (const auto* x : {&ct.crosstab, &ms.crosstab})
      for (std::size_t r = 0; r < x->counts.rows(); ++r)
        for (std::size_t c = 0; c < x->counts.cols(); ++c)
          fold(x->counts.at(r, c));
    for (const auto& s : os.shares) {
      fold(s.count);
      fold(s.total);
      fold(s.share.lo);
      fold(s.share.hi);
    }
    fold(ns.numeric.sum);
    fold(ns.numeric.min);
    fold(ns.numeric.max);
    return fp;
  };

  const std::size_t block = 1537;  // ragged: every append resumes mid-shard
  const auto incremental_cut_fps = [&](parallel::ThreadPool* pool) {
    incr::IncrementalEngine engine(t);
    register_batch(engine);
    std::vector<std::uint64_t> fps;
    for (std::size_t lo = 0; lo < n; lo += block) {
      engine.append_block(t.slice(lo, std::min(n, lo + block)), pool);
      fps.push_back(fold_results(engine.result(0), engine.result(1),
                                 engine.result(2), engine.result(3)));
    }
    return fps;
  };
  const auto cold_fp = [&](std::size_t rows, parallel::ThreadPool* pool) {
    const data::Table prefix = t.slice(0, rows);
    query::QueryEngine engine(prefix);
    register_batch(engine);
    engine.run(pool);
    return fold_results(engine.raw_result(0), engine.raw_result(1),
                        engine.raw_result(2), engine.raw_result(3));
  };

  // Reference: forced-scalar serial incremental walk, checked cut by cut
  // against the forced-scalar serial cold recompute.
  std::vector<std::uint64_t> reference;
  {
    ForcedIsa scalar(simd::Isa::kScalar);
    reference = incremental_cut_fps(nullptr);
    std::size_t cut = 0;
    for (std::size_t lo = 0; lo < n; lo += block, ++cut)
      ASSERT_EQ(reference[cut], cold_fp(std::min(n, lo + block), nullptr))
          << "scalar serial cut " << cut;
  }

  // Native width, every pool size: same fingerprints at every cut, and the
  // pooled cold recompute agrees at the final cut.
  EXPECT_EQ(incremental_cut_fps(nullptr), reference) << "native serial";
  for (const std::size_t threads : {1u, 2u, 8u}) {
    parallel::ThreadPool pool(threads);
    EXPECT_EQ(incremental_cut_fps(&pool), reference)
        << "threads=" << threads;
    EXPECT_EQ(cold_fp(n, &pool), reference.back())
        << "cold, threads=" << threads;
  }
}

// Repeated pooled runs are stable too (no hidden global state).
TEST(DeterminismTest, RepeatedPooledBootstrapRunsAreIdentical) {
  const std::vector<double> data = noisy_data(200, 404);
  parallel::ThreadPool pool(4);
  stats::BootstrapOptions opts;
  opts.replicates = 300;
  opts.seed = 9;
  opts.pool = &pool;

  const auto first = stats::bootstrap(
      data, [](std::span<const double> x) { return stats::mean(x); }, opts);
  for (int run = 0; run < 2; ++run) {
    const auto again = stats::bootstrap(
        data, [](std::span<const double> x) { return stats::mean(x); }, opts);
    ASSERT_EQ(again.replicates.size(), first.replicates.size());
    for (std::size_t i = 0; i < first.replicates.size(); ++i)
      ASSERT_EQ(bits_of(again.replicates[i]), bits_of(first.replicates[i]));
  }
}

}  // namespace
}  // namespace rcr
