#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/nonparametric.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rcr::stats {
namespace {

TEST(KruskalWallisTest, IdenticalGroupsScoreLow) {
  const std::vector<std::vector<double>> groups = {
      {1, 2, 3, 4, 5}, {1, 2, 3, 4, 5}, {1, 2, 3, 4, 5}};
  const auto r = kruskal_wallis(groups);
  EXPECT_LT(r.h, 1.0);
  EXPECT_GT(r.p_value, 0.5);
  EXPECT_DOUBLE_EQ(r.dof, 2.0);
}

TEST(KruskalWallisTest, SeparatedGroupsScoreHigh) {
  const std::vector<std::vector<double>> groups = {
      {1, 2, 3, 4, 5, 6}, {11, 12, 13, 14, 15, 16}, {21, 22, 23, 24, 25, 26}};
  const auto r = kruskal_wallis(groups);
  EXPECT_GT(r.h, 14.0);  // near the maximum for this configuration
  EXPECT_LT(r.p_value, 0.001);
  EXPECT_GT(r.epsilon_squared, 0.8);
}

TEST(KruskalWallisTest, TwoFullySeparatedGroupsHandComputed) {
  // Group A holds ranks 6..10, group B ranks 1..5 (complete separation):
  // H = 12/(10*11) * (40²/5 + 15²/5) - 3*11 = 6.818... (no ties).
  const std::vector<std::vector<double>> groups = {
      {6.5, 6.8, 7.1, 7.3, 10.2}, {5.8, 5.9, 6.0, 6.1, 6.2}};
  const auto r = kruskal_wallis(groups);
  EXPECT_NEAR(r.h, 6.8181818, 1e-6);
  EXPECT_LT(r.p_value, 0.01);
}

TEST(KruskalWallisTest, RejectsDegenerate) {
  EXPECT_THROW(kruskal_wallis({{1.0, 2.0}}), rcr::Error);
  EXPECT_THROW(kruskal_wallis({{1.0}, {}}), rcr::Error);
  // All values tie: correction factor hits zero.
  EXPECT_THROW(kruskal_wallis({{3.0, 3.0}, {3.0, 3.0}}), rcr::Error);
}

TEST(WilcoxonTest, SymmetricDifferencesNotSignificant) {
  const std::vector<double> x = {1, 2, 3, 4, 5, 6, 7, 8};
  const std::vector<double> y = {2, 1, 4, 3, 6, 5, 8, 7};
  const auto r = wilcoxon_signed_rank(x, y);
  EXPECT_GT(r.p_value, 0.5);
  EXPECT_EQ(r.n_nonzero, 8u);
}

TEST(WilcoxonTest, ConsistentShiftDetected) {
  std::vector<double> x, y;
  rcr::Rng rng(3);
  for (int i = 0; i < 40; ++i) {
    const double base = rng.normal(10, 2);
    x.push_back(base + 1.0 + rng.normal(0, 0.2));
    y.push_back(base);
  }
  const auto r = wilcoxon_signed_rank(x, y);
  EXPECT_GT(r.z, 3.0);  // W+ dominates
  EXPECT_LT(r.p_value, 0.001);
}

TEST(WilcoxonTest, AllZeroDifferencesGivePOne) {
  const std::vector<double> x = {1, 2, 3};
  const auto r = wilcoxon_signed_rank(x, x);
  EXPECT_EQ(r.n_nonzero, 0u);
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);
}

TEST(WilcoxonTest, RejectsMismatch) {
  EXPECT_THROW(wilcoxon_signed_rank(std::vector<double>{1.0},
                                    std::vector<double>{1.0, 2.0}),
               rcr::Error);
}

TEST(KendallTest, PerfectAgreementAndReversal) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(kendall_tau_b(x, y), 1.0);
  const std::vector<double> rev = {50, 40, 30, 20, 10};
  EXPECT_DOUBLE_EQ(kendall_tau_b(x, rev), -1.0);
}

TEST(KendallTest, KnownSmallValue) {
  // x = 1..4, y = {1, 3, 2, 4}: 5 concordant, 1 discordant -> tau = 4/6.
  const std::vector<double> x = {1, 2, 3, 4};
  const std::vector<double> y = {1, 3, 2, 4};
  EXPECT_NEAR(kendall_tau_b(x, y), 4.0 / 6.0, 1e-12);
}

TEST(KendallTest, TiesShrinkMagnitude) {
  const std::vector<double> x = {1, 2, 3, 4, 5, 6};
  const std::vector<double> y = {1, 1, 2, 2, 3, 3};  // monotone with ties
  const double tau = kendall_tau_b(x, y);
  EXPECT_GT(tau, 0.8);
  EXPECT_LT(tau, 1.0);  // tau-b < 1 under ties in y only
}

TEST(KendallTest, RejectsConstantVariable) {
  const std::vector<double> x = {1, 1, 1};
  const std::vector<double> y = {1, 2, 3};
  EXPECT_THROW(kendall_tau_b(x, y), rcr::Error);
}

TEST(KendallTest, AgreesInSignWithStrongCorrelation) {
  rcr::Rng rng(9);
  std::vector<double> x, y;
  for (int i = 0; i < 200; ++i) {
    const double v = rng.normal();
    x.push_back(v);
    y.push_back(0.9 * v + 0.1 * rng.normal());
  }
  EXPECT_GT(kendall_tau_b(x, y), 0.7);
}

}  // namespace
}  // namespace rcr::stats
