// Tests for the extension statistics: Benjamini–Hochberg FDR adjustment,
// the Cochran–Armitage trend test, and BCa bootstrap intervals.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/bootstrap.hpp"
#include "stats/contingency.hpp"
#include "stats/descriptive.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rcr::stats {
namespace {

// --- Benjamini–Hochberg ----------------------------------------------------------

TEST(BhTest, KnownAdjustment) {
  // p = {0.01, 0.02, 0.03, 0.04} with m = 4:
  // sorted scaled: 0.04, 0.04, 0.04, 0.04 after the step-up min pass.
  const auto adj =
      benjamini_hochberg_adjust(std::vector<double>{0.01, 0.02, 0.03, 0.04});
  for (double a : adj) EXPECT_NEAR(a, 0.04, 1e-12);
}

TEST(BhTest, StepUpMonotone) {
  const std::vector<double> p = {0.001, 0.01, 0.5, 0.04};
  const auto adj = benjamini_hochberg_adjust(p);
  // q-values preserve the order of p-values.
  EXPECT_LT(adj[0], adj[1]);
  EXPECT_LE(adj[1], adj[3]);
  EXPECT_LE(adj[3], adj[2]);
  for (double a : adj) EXPECT_LE(a, 1.0);
}

TEST(BhTest, LessConservativeThanHolm) {
  const std::vector<double> p = {0.01, 0.02, 0.03, 0.04, 0.05};
  const auto bh = benjamini_hochberg_adjust(p);
  const auto holm = holm_adjust(p);
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_LE(bh[i], holm[i] + 1e-12) << i;
    EXPECT_GE(bh[i], p[i]);  // adjustment never shrinks p
  }
}

TEST(BhTest, SingleTestUnchanged) {
  const auto adj = benjamini_hochberg_adjust(std::vector<double>{0.2});
  EXPECT_DOUBLE_EQ(adj[0], 0.2);
}

TEST(BhTest, RejectsInvalidP) {
  EXPECT_THROW(benjamini_hochberg_adjust(std::vector<double>{1.5}),
               rcr::Error);
}

// --- Cochran–Armitage --------------------------------------------------------------

TEST(CochranArmitageTest, FlatProportionsGiveZero) {
  const std::vector<double> successes = {20, 40, 60};
  const std::vector<double> trials = {100, 200, 300};
  const std::vector<double> scores = {0, 1, 2};
  const auto r = cochran_armitage_trend(successes, trials, scores);
  EXPECT_NEAR(r.z, 0.0, 1e-10);
  EXPECT_NEAR(r.p_value, 1.0, 1e-10);
}

TEST(CochranArmitageTest, RisingTrendDetected) {
  const std::vector<double> successes = {10, 30, 60};
  const std::vector<double> trials = {100, 100, 100};
  const std::vector<double> scores = {0, 1, 2};
  const auto r = cochran_armitage_trend(successes, trials, scores);
  EXPECT_GT(r.z, 5.0);
  EXPECT_LT(r.p_value, 1e-6);
}

TEST(CochranArmitageTest, FallingTrendNegativeZ) {
  const std::vector<double> successes = {60, 30, 10};
  const std::vector<double> trials = {100, 100, 100};
  const std::vector<double> scores = {2011, 2017, 2024};
  const auto r = cochran_armitage_trend(successes, trials, scores);
  EXPECT_LT(r.z, -5.0);
}

TEST(CochranArmitageTest, TwoGroupsMatchProportionTestRoughly) {
  // With k = 2 the trend test reduces to the two-proportion z-test.
  const auto trend = cochran_armitage_trend(
      std::vector<double>{30, 60}, std::vector<double>{100, 100},
      std::vector<double>{0, 1});
  const auto prop = two_proportion_test(60, 100, 30, 100);
  EXPECT_NEAR(std::fabs(trend.z), std::fabs(prop.z), 1e-9);
}

TEST(CochranArmitageTest, RejectsBadInput) {
  EXPECT_THROW(cochran_armitage_trend(std::vector<double>{1.0},
                                      std::vector<double>{10.0},
                                      std::vector<double>{0.0}),
               rcr::Error);
  EXPECT_THROW(cochran_armitage_trend(std::vector<double>{1, 2},
                                      std::vector<double>{0, 10},
                                      std::vector<double>{0, 1}),
               rcr::Error);
  EXPECT_THROW(cochran_armitage_trend(std::vector<double>{11, 2},
                                      std::vector<double>{10, 10},
                                      std::vector<double>{0, 1}),
               rcr::Error);
}

// --- BCa bootstrap -------------------------------------------------------------------

std::vector<double> skewed_sample(std::size_t n, std::uint64_t seed) {
  rcr::Rng rng(seed);
  std::vector<double> v(n);
  for (double& x : v) x = rng.lognormal(0.0, 1.0);
  return v;
}

TEST(BcaTest, ComputedOnlyWhenRequested) {
  const auto data = skewed_sample(150, 1);
  const auto stat = [](std::span<const double> x) { return mean(x); };
  BootstrapOptions off;
  const auto without = bootstrap(data, stat, off);
  EXPECT_DOUBLE_EQ(without.bca_ci.lo, 0.0);
  EXPECT_DOUBLE_EQ(without.bca_ci.hi, 0.0);

  BootstrapOptions on;
  on.compute_bca = true;
  const auto with = bootstrap(data, stat, on);
  EXPECT_LT(with.bca_ci.lo, with.estimate);
  EXPECT_GT(with.bca_ci.hi, with.estimate);
}

TEST(BcaTest, NearPercentileForSymmetricStatistic) {
  rcr::Rng rng(2);
  std::vector<double> data(300);
  for (double& x : data) x = rng.normal(5.0, 1.0);
  BootstrapOptions opts;
  opts.compute_bca = true;
  opts.replicates = 4000;
  const auto r = bootstrap(
      data, [](std::span<const double> x) { return mean(x); }, opts);
  // Symmetric sampling distribution: BCa ≈ percentile.
  EXPECT_NEAR(r.bca_ci.lo, r.percentile_ci.lo, 0.02);
  EXPECT_NEAR(r.bca_ci.hi, r.percentile_ci.hi, 0.02);
  EXPECT_NEAR(r.bca_bias_z0, 0.0, 0.1);
}

TEST(BcaTest, SkewedStatisticShiftsInterval) {
  const auto data = skewed_sample(120, 3);
  BootstrapOptions opts;
  opts.compute_bca = true;
  opts.replicates = 4000;
  const auto r = bootstrap(
      data,
      [](std::span<const double> x) { return variance(x); },  // right-skewed
      opts);
  // Acceleration should be clearly nonzero for the variance of lognormals,
  // and the BCa interval should differ from the percentile one.
  EXPECT_GT(std::fabs(r.bca_acceleration), 0.01);
  EXPECT_GT(std::fabs(r.bca_ci.lo - r.percentile_ci.lo) +
                std::fabs(r.bca_ci.hi - r.percentile_ci.hi),
            0.01);
}

TEST(BcaTest, DeterministicForSeed) {
  const auto data = skewed_sample(80, 4);
  BootstrapOptions opts;
  opts.compute_bca = true;
  opts.seed = 55;
  const auto stat = [](std::span<const double> x) { return median(x); };
  const auto a = bootstrap(data, stat, opts);
  const auto b = bootstrap(data, stat, opts);
  EXPECT_DOUBLE_EQ(a.bca_ci.lo, b.bca_ci.lo);
  EXPECT_DOUBLE_EQ(a.bca_ci.hi, b.bca_ci.hi);
}

}  // namespace
}  // namespace rcr::stats
