// Tests for the weighted descriptive statistics plus a fuzz-style CSV
// round-trip property over randomly generated tables.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "data/csv.hpp"
#include "data/table.hpp"
#include "stats/descriptive.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rcr {
namespace {

// --- weighted variance -------------------------------------------------------------

TEST(WeightedVarianceTest, EqualWeightsMatchSampleVariance) {
  const std::vector<double> x = {2, 4, 4, 4, 5, 5, 7, 9};
  const std::vector<double> w(x.size(), 1.0);
  EXPECT_NEAR(stats::weighted_variance(x, w), stats::variance(x), 1e-12);
  // Scaling all weights by a constant changes nothing.
  const std::vector<double> w3(x.size(), 3.0);
  EXPECT_NEAR(stats::weighted_variance(x, w3), stats::variance(x), 1e-12);
}

TEST(WeightedVarianceTest, ZeroWeightPointsIgnored) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 1000.0};
  const std::vector<double> w = {1.0, 1.0, 1.0, 0.0};
  const std::vector<double> trimmed = {1.0, 2.0, 3.0};
  EXPECT_NEAR(stats::weighted_variance(x, w), stats::variance(trimmed),
              1e-12);
}

TEST(WeightedVarianceTest, RejectsDegenerate) {
  EXPECT_THROW(stats::weighted_variance(std::vector<double>{1.0},
                                        std::vector<double>{1.0}),
               rcr::Error);
  EXPECT_THROW(stats::weighted_variance(std::vector<double>{1.0, 2.0},
                                        std::vector<double>{1.0, 0.0}),
               rcr::Error);
}

// --- weighted quantile ---------------------------------------------------------------

TEST(WeightedQuantileTest, EqualWeightsHitEmpiricalCdf) {
  const std::vector<double> x = {10, 20, 30, 40};
  const std::vector<double> w(4, 1.0);
  EXPECT_DOUBLE_EQ(stats::weighted_median(x, w), 20.0);
  EXPECT_DOUBLE_EQ(stats::weighted_quantile(x, w, 0.75), 30.0);
  EXPECT_DOUBLE_EQ(stats::weighted_quantile(x, w, 1.0), 40.0);
}

TEST(WeightedQuantileTest, HeavyWeightDragsTheMedian) {
  const std::vector<double> x = {1.0, 2.0, 100.0};
  EXPECT_DOUBLE_EQ(
      stats::weighted_median(x, std::vector<double>{1.0, 1.0, 5.0}), 100.0);
  EXPECT_DOUBLE_EQ(
      stats::weighted_median(x, std::vector<double>{5.0, 1.0, 1.0}), 1.0);
}

TEST(WeightedQuantileTest, UnsortedInputHandled) {
  const std::vector<double> x = {30, 10, 20};
  const std::vector<double> w = {1.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(stats::weighted_median(x, w), 20.0);
}

TEST(WeightedQuantileTest, RejectsBadInput) {
  const std::vector<double> x = {1.0};
  EXPECT_THROW(stats::weighted_quantile(x, std::vector<double>{0.0}, 0.5),
               rcr::Error);
  EXPECT_THROW(stats::weighted_quantile(x, std::vector<double>{1.0}, 1.5),
               rcr::Error);
  EXPECT_THROW(
      stats::weighted_quantile(x, std::vector<double>{1.0, 2.0}, 0.5),
      rcr::Error);
}

// --- CSV fuzz round-trip ---------------------------------------------------------------

// Builds a random table with awkward labels, missing cells, and all three
// column kinds, then checks a full CSV round trip preserves it.
class CsvFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CsvFuzzTest, RandomTableRoundTrips) {
  rcr::Rng rng(GetParam());
  const std::vector<std::string> labels = {
      "plain", "with space", "comma,inside", "quote\"inside", "pipe-free",
      "ünïcode"};
  data::Table t;
  auto& num = t.add_numeric("n");
  auto& cat = t.add_categorical("c", labels);
  auto& multi = t.add_multiselect("m", {"a", "b", "comma,opt", "d"});
  const std::size_t rows = 30 + rng.next_below(50);
  for (std::size_t i = 0; i < rows; ++i) {
    if (rng.bernoulli(0.1)) {
      num.push_missing();
    } else {
      num.push(std::floor(rng.uniform(-1000.0, 1000.0) * 16.0) / 16.0);
    }
    if (rng.bernoulli(0.1)) {
      cat.push_missing();
    } else {
      cat.push_code(static_cast<std::int32_t>(rng.next_below(labels.size())));
    }
    if (rng.bernoulli(0.1)) {
      multi.push_missing();
    } else {
      multi.push_mask(rng.next_below(16));  // includes the empty mask
    }
  }

  std::ostringstream buffer;
  data::write_csv(buffer, t);
  std::istringstream in(buffer.str());
  data::Table schema;
  schema.add_numeric("n");
  schema.add_categorical("c", labels);
  schema.add_multiselect("m", {"a", "b", "comma,opt", "d"});
  const data::Table back = data::read_csv(in, schema);

  ASSERT_EQ(back.row_count(), rows);
  for (std::size_t i = 0; i < rows; ++i) {
    const bool nm = data::NumericColumn::is_missing(num.at(i));
    EXPECT_EQ(nm, data::NumericColumn::is_missing(back.numeric("n").at(i)));
    if (!nm) {
      EXPECT_DOUBLE_EQ(num.at(i), back.numeric("n").at(i));
    }
    EXPECT_EQ(cat.code_at(i), back.categorical("c").code_at(i));
    EXPECT_EQ(multi.is_missing(i), back.multiselect("m").is_missing(i));
    if (!multi.is_missing(i)) {
      EXPECT_EQ(multi.mask_at(i), back.multiselect("m").mask_at(i));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvFuzzTest,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace rcr
