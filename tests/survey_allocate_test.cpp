// Tests for stratified allocation and the recode utilities.
#include <gtest/gtest.h>

#include <numeric>

#include "data/recode.hpp"
#include "survey/allocate.hpp"
#include "util/error.hpp"

namespace rcr {
namespace {

TEST(ProportionalAllocationTest, ExactWhenDivisible) {
  const auto n = survey::proportional_allocation(
      std::vector<double>{100, 200, 100}, 40);
  EXPECT_EQ(n, (std::vector<std::size_t>{10, 20, 10}));
}

TEST(ProportionalAllocationTest, SumsExactlyWithRemainders) {
  const std::vector<double> sizes = {3, 3, 3, 1};
  const auto n = survey::proportional_allocation(sizes, 10);
  EXPECT_EQ(std::accumulate(n.begin(), n.end(), std::size_t{0}), 10u);
  // Largest strata get at least their floor share.
  for (std::size_t h = 0; h < 3; ++h) EXPECT_GE(n[h], 3u);
}

TEST(NeymanAllocationTest, OversamplesHighVarianceStrata) {
  // Equal sizes, one noisy stratum: it should get the lion's share.
  const std::vector<double> sizes = {100, 100};
  const std::vector<double> sds = {1.0, 4.0};
  const auto n = survey::neyman_allocation(sizes, sds, 100);
  EXPECT_EQ(n[0] + n[1], 100u);
  EXPECT_EQ(n[0], 20u);  // 1/(1+4) of the sample
  EXPECT_EQ(n[1], 80u);
}

TEST(NeymanAllocationTest, ReducesToProportionalForEqualSds) {
  const std::vector<double> sizes = {50, 150, 100};
  const std::vector<double> sds = {2.0, 2.0, 2.0};
  EXPECT_EQ(survey::neyman_allocation(sizes, sds, 60),
            survey::proportional_allocation(sizes, 60));
}

TEST(AllocationTest, RejectsBadInput) {
  EXPECT_THROW(survey::proportional_allocation(std::vector<double>{}, 10),
               rcr::Error);
  EXPECT_THROW(
      survey::proportional_allocation(std::vector<double>{0.0, 0.0}, 10),
      rcr::Error);
  EXPECT_THROW(survey::neyman_allocation(std::vector<double>{1.0},
                                         std::vector<double>{1.0, 2.0}, 10),
               rcr::Error);
  EXPECT_THROW(survey::neyman_allocation(std::vector<double>{1.0},
                                         std::vector<double>{-1.0}, 10),
               rcr::Error);
}

// --- recode ---------------------------------------------------------------------

data::Table cores_table() {
  data::Table t;
  auto& cores = t.add_numeric("cores");
  for (double v : {1.0, 2.0, 8.0, 64.0, 1024.0}) cores.push(v);
  cores.push_missing();
  return t;
}

TEST(RecodeTest, BinsNumericIntoClasses) {
  auto t = cores_table();
  data::add_binned_column(t, "cores", "width_class", {2.0, 16.0, 256.0},
                          {"serial", "node", "cluster", "capability"});
  const auto& col = t.categorical("width_class");
  EXPECT_EQ(col.label_at(0), "serial");      // 1 < 2
  EXPECT_EQ(col.label_at(1), "node");        // 2 in [2,16)
  EXPECT_EQ(col.label_at(2), "node");        // 8
  EXPECT_EQ(col.label_at(3), "cluster");     // 64 in [16,256)
  EXPECT_EQ(col.label_at(4), "capability");  // 1024 >= 256
  EXPECT_TRUE(col.is_missing(5));
}

TEST(RecodeTest, DerivedColumnFromPredicate) {
  auto t = cores_table();
  data::add_derived_column(
      t, "wide", {"no", "yes"},
      [](const data::Table& table, std::size_t i) -> std::int32_t {
        const double v = table.numeric("cores").at(i);
        if (data::NumericColumn::is_missing(v)) return data::kMissingCode;
        return v >= 16.0 ? 1 : 0;
      });
  const auto& col = t.categorical("wide");
  EXPECT_EQ(col.label_at(0), "no");
  EXPECT_EQ(col.label_at(3), "yes");
  EXPECT_TRUE(col.is_missing(5));
  EXPECT_NO_THROW(t.validate_rectangular());
}

TEST(RecodeTest, RejectsBadBinning) {
  auto t = cores_table();
  EXPECT_THROW(data::add_binned_column(t, "cores", "w", {}, {"a"}),
               rcr::Error);
  EXPECT_THROW(
      data::add_binned_column(t, "cores", "w", {2.0}, {"a", "b", "c"}),
      rcr::Error);
  EXPECT_THROW(
      data::add_binned_column(t, "cores", "w", {5.0, 2.0}, {"a", "b", "c"}),
      rcr::Error);
}

}  // namespace
}  // namespace rcr
