#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "data/crosstab.hpp"
#include "data/csv.hpp"
#include "parallel/thread_pool.hpp"
#include "survey/schema.hpp"
#include "synth/calibration.hpp"
#include "synth/domain.hpp"
#include "synth/generator.hpp"
#include "util/error.hpp"

namespace rcr::synth {
namespace {

double option_share(const data::Table& t, const char* column,
                    const char* option) {
  const auto& col = t.multiselect(column);
  const auto o = static_cast<std::size_t>(col.find_option(option));
  double hit = 0.0, n = 0.0;
  for (std::size_t i = 0; i < col.size(); ++i) {
    if (col.is_missing(i)) continue;
    n += 1.0;
    if (col.has(i, o)) hit += 1.0;
  }
  return hit / n;
}

TEST(DomainTest, InstrumentIsWellFormed) {
  const auto& q = instrument();
  EXPECT_EQ(q.size(), 15u);
  EXPECT_TRUE(q.has_question(col::kField));
  EXPECT_TRUE(q.has_question(col::kLanguages));
  const auto t = q.make_table();
  EXPECT_EQ(t.column_count(), q.size());
}

TEST(CalibrationTest, ParamsValidatedAndDistinct) {
  const auto& p2011 = params_for(Wave::k2011);
  const auto& p2024 = params_for(Wave::k2024);
  EXPECT_EQ(p2011.wave, Wave::k2011);
  EXPECT_EQ(p2024.wave, Wave::k2024);
  // The defining shifts are encoded.
  const auto lang_idx = [](const char* name) {
    for (std::size_t i = 0; i < languages().size(); ++i)
      if (languages()[i] == name) return i;
    throw rcr::Error("unknown language");
  };
  EXPECT_GT(p2024.language_base[lang_idx("Python")],
            p2011.language_base[lang_idx("Python")]);
  EXPECT_LT(p2024.language_base[lang_idx("MATLAB")],
            p2011.language_base[lang_idx("MATLAB")]);
  EXPECT_DOUBLE_EQ(p2011.language_base[lang_idx("Julia")], 0.0);
  EXPECT_GT(p2024.dataset_log_gb_mu, p2011.dataset_log_gb_mu);
}

TEST(GeneratorTest, DeterministicForSeed) {
  const auto a = generate_wave({Wave::k2024, 200, 42, nullptr});
  const auto b = generate_wave({Wave::k2024, 200, 42, nullptr});
  ASSERT_EQ(a.row_count(), b.row_count());
  const auto& la = a.multiselect(col::kLanguages);
  const auto& lb = b.multiselect(col::kLanguages);
  for (std::size_t i = 0; i < la.size(); ++i)
    EXPECT_EQ(la.mask_at(i), lb.mask_at(i));
  for (std::size_t i = 0; i < a.row_count(); ++i) {
    EXPECT_EQ(a.categorical(col::kField).code_at(i),
              b.categorical(col::kField).code_at(i));
  }
}

TEST(GeneratorTest, ParallelGenerationMatchesSerial) {
  rcr::parallel::ThreadPool pool(4);
  const auto serial = generate_wave({Wave::k2011, 300, 9, nullptr});
  const auto parallel = generate_wave({Wave::k2011, 300, 9, &pool});
  const auto& ls = serial.multiselect(col::kLanguages);
  const auto& lp = parallel.multiselect(col::kLanguages);
  for (std::size_t i = 0; i < ls.size(); ++i)
    EXPECT_EQ(ls.mask_at(i), lp.mask_at(i));
  const auto& cs = serial.numeric(col::kCoresTypical);
  const auto& cp = parallel.numeric(col::kCoresTypical);
  for (std::size_t i = 0; i < cs.size(); ++i) {
    const bool ms = data::NumericColumn::is_missing(cs.at(i));
    const bool mp = data::NumericColumn::is_missing(cp.at(i));
    EXPECT_EQ(ms, mp);
    if (!ms) {
      EXPECT_DOUBLE_EQ(cs.at(i), cp.at(i));
    }
  }
}

TEST(GeneratorTest, ValidatesAgainstInstrument) {
  const auto t = generate_wave({Wave::k2024, 500, 3, nullptr});
  const auto issues = survey::validate_responses(instrument(), t);
  EXPECT_TRUE(issues.empty());
}

class GeneratorInvariantTest
    : public ::testing::TestWithParam<std::tuple<Wave, std::uint64_t>> {};

TEST_P(GeneratorInvariantTest, HardConsistencyRules) {
  const auto [wave, seed] = GetParam();
  const auto t = generate_wave({wave, 400, seed, nullptr});
  const auto& langs = t.multiselect(col::kLanguages);
  const auto& primary = t.categorical(col::kPrimaryLanguage);
  const auto& res = t.multiselect(col::kParallelResources);
  const auto& models = t.multiselect(col::kParallelModels);
  const auto& cores = t.numeric(col::kCoresTypical);
  const auto& aware = t.multiselect(col::kToolsAware);
  const auto& used = t.multiselect(col::kToolsUsed);
  const auto mpi = static_cast<std::size_t>(models.find_option("MPI"));
  const auto cuda = static_cast<std::size_t>(models.find_option("CUDA/HIP"));
  const auto cluster = static_cast<std::size_t>(res.find_option("Cluster"));
  const auto gpu = static_cast<std::size_t>(res.find_option("GPU"));

  for (std::size_t i = 0; i < t.row_count(); ++i) {
    // Everyone uses at least one language; primary is among them.
    ASSERT_FALSE(langs.is_missing(i));
    EXPECT_GE(langs.selection_count(i), 1u);
    ASSERT_FALSE(primary.is_missing(i));
    EXPECT_TRUE(langs.has(i, static_cast<std::size_t>(primary.code_at(i))));

    // Models only for parallel users; MPI needs cluster, CUDA needs GPU.
    if (!models.is_missing(i)) {
      if (res.mask_at(i) == 0) {
        EXPECT_EQ(models.mask_at(i), 0u);
      }
      if (models.has(i, mpi)) {
        EXPECT_TRUE(res.has(i, cluster));
      }
      if (models.has(i, cuda)) {
        EXPECT_TRUE(res.has(i, gpu));
      }
    }
    // Serial users run on one core.
    if (!data::NumericColumn::is_missing(cores.at(i)) &&
        res.mask_at(i) == 0) {
      EXPECT_DOUBLE_EQ(cores.at(i), 1.0);
    }
    // tools_used ⊆ tools_aware (when answered).
    if (!aware.is_missing(i) && !used.is_missing(i)) {
      EXPECT_EQ(used.mask_at(i) & ~aware.mask_at(i), 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    WavesAndSeeds, GeneratorInvariantTest,
    ::testing::Combine(::testing::Values(Wave::k2011, Wave::k2024),
                       ::testing::Values(1, 7, 123)));

TEST(GeneratorCalibrationTest, SharesTrackAnchors) {
  // Large n so sampling noise is small; tolerances are loose because traits
  // modulate the baselines.
  const auto w2011 = generate_wave({Wave::k2011, 6000, 11, nullptr});
  const auto w2024 = generate_wave({Wave::k2024, 6000, 13, nullptr});

  // Directional anchors (the study's headline trends).
  EXPECT_GT(option_share(w2024, col::kLanguages, "Python"),
            option_share(w2011, col::kLanguages, "Python") + 0.2);
  EXPECT_LT(option_share(w2024, col::kLanguages, "MATLAB"),
            option_share(w2011, col::kLanguages, "MATLAB") - 0.05);
  EXPECT_GT(option_share(w2024, col::kSePractices, "Version control"),
            option_share(w2011, col::kSePractices, "Version control") + 0.2);
  EXPECT_GT(option_share(w2024, col::kParallelResources, "GPU"),
            option_share(w2011, col::kParallelResources, "GPU") + 0.1);
  // Julia and Rust absent in 2011.
  EXPECT_DOUBLE_EQ(option_share(w2011, col::kLanguages, "Julia"), 0.0);
  EXPECT_DOUBLE_EQ(option_share(w2011, col::kLanguages, "Rust"), 0.0);
  EXPECT_GT(option_share(w2024, col::kLanguages, "Julia"), 0.0);
}

TEST(GeneratorCalibrationTest, FieldMixMatchesTargets) {
  const auto t = generate_wave({Wave::k2024, 20000, 17, nullptr});
  const auto& p = params_for(Wave::k2024);
  const auto counts = t.categorical(col::kField).counts();
  double total = 0.0;
  for (double c : counts) total += c;
  for (std::size_t f = 0; f < counts.size(); ++f)
    EXPECT_NEAR(counts[f] / total, p.field_mix[f], 0.012)
        << fields()[f];
}

TEST(GeneratorCalibrationTest, FieldLeansAreVisible) {
  const auto t = generate_wave({Wave::k2024, 12000, 19, nullptr});
  const auto cs = t.filter_equals(col::kField, "Computer Sci");
  const auto social = t.filter_equals(col::kField, "Social Sci");
  // CS leans C++; Social Science leans R.
  EXPECT_GT(option_share(cs, col::kLanguages, "C++"),
            option_share(social, col::kLanguages, "C++") + 0.1);
  EXPECT_GT(option_share(social, col::kLanguages, "R"),
            option_share(cs, col::kLanguages, "R") + 0.1);
}

TEST(GeneratorTest, RejectsEmptyWave) {
  EXPECT_THROW(generate_wave({Wave::k2011, 0, 1, nullptr}), rcr::Error);
}

std::string to_csv(const data::Table& t) {
  std::ostringstream out;
  data::write_csv(out, t);
  return out.str();
}

// The chunked-emission contract: generate_blocks reassembles to a table
// byte-identical (via CSV serialization) to the one-shot generate_wave, for
// any block size, with and without nonresponse bias.
TEST(GeneratorBlocksTest, BlocksConcatenateByteIdenticalToWave) {
  for (double nonresponse : {0.0, 0.4}) {
    GeneratorConfig config{Wave::k2024, 503, 23, nullptr, nonresponse};
    const auto whole = generate_wave(config);
    for (std::size_t block_rows : {64u, 100u, 503u, 1000u}) {
      auto assembled = whole.clone_empty();
      std::size_t expected_first = 0;
      generate_blocks(config, block_rows,
                      [&](data::Table block, std::size_t first_row) {
                        EXPECT_EQ(first_row, expected_first);
                        EXPECT_LE(block.row_count(), block_rows);
                        expected_first += block.row_count();
                        assembled.append_rows(block);
                      });
      EXPECT_EQ(assembled.row_count(), whole.row_count());
      EXPECT_EQ(to_csv(assembled), to_csv(whole))
          << "block_rows=" << block_rows << " nonresponse=" << nonresponse;
    }
  }
}

// Any partition of [0, n) via generate_range concatenates to generate_wave.
TEST(GeneratorBlocksTest, RangeShardsConcatenateToWave) {
  GeneratorConfig config{Wave::k2011, 257, 31, nullptr};
  const auto whole = generate_wave(config);
  const std::size_t cuts[] = {0, 1, 63, 64, 200, 257};
  auto assembled = whole.clone_empty();
  for (std::size_t i = 0; i + 1 < std::size(cuts); ++i)
    assembled.append_rows(
        generate_range(config, cuts[i], cuts[i + 1] - cuts[i]));
  EXPECT_EQ(to_csv(assembled), to_csv(whole));
}

TEST(GeneratorBlocksTest, RangeRejectsNonresponse) {
  GeneratorConfig config;
  config.nonresponse_strength = 0.2;
  EXPECT_THROW(generate_range(config, 0, 10), rcr::Error);
}

TEST(GeneratorTest, ConvenienceWrappersUseDistinctStreams) {
  const auto a = generate_2011(50, 7);
  const auto b = generate_2024(50, 7);
  // Same seed argument, different waves: masks must differ somewhere.
  const auto& la = a.multiselect(col::kLanguages);
  const auto& lb = b.multiselect(col::kLanguages);
  bool any_diff = false;
  for (std::size_t i = 0; i < 50; ++i)
    if (la.mask_at(i) != lb.mask_at(i)) any_diff = true;
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace rcr::synth
