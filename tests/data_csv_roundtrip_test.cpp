// Write→read round-trip property tests for the RFC-4180 CSV engine, plus
// the parallel-reader determinism contract: read_csv_parallel must produce
// a table byte-identical to serial read_csv for every thread count, for
// every input — including which error is raised on malformed input.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "data/csv.hpp"
#include "data/table.hpp"
#include "parallel/thread_pool.hpp"
#include "util/error.hpp"

namespace rcr::data {
namespace {

std::string to_csv(const Table& t, const CsvOptions& options = {}) {
  std::ostringstream out;
  write_csv(out, t, options);
  return out.str();
}

Table from_csv(const std::string& text, const Table& schema,
               const CsvOptions& options = {}) {
  std::istringstream in(text);
  return read_csv(in, schema, options);
}

// Every shape escape_field has to handle: delimiters, quotes, embedded LF,
// lone CR, CRLF, leading/trailing whitespace, and the multi-select "-"
// sentinel as a *categorical* label (legal there; only multi-select option
// labels reserve it).
const std::vector<std::string>& gnarly_labels() {
  static const std::vector<std::string> labels = {
      "plain",     " lead",       "trail ",      " both ",
      "\ttabbed\t", "multi\nline", "cr\rreturn",  "crlf\r\nend",
      "com,ma",    "qu\"ote",     "\"quoted\"",  " \"mix\",\nall\r ",
      "-"};
  return labels;
}

// A survey-shaped table exercising every column kind and every escape
// shape, with missing cells and the answered-none mask sprinkled in.
Table make_gnarly_table() {
  const auto& labels = gnarly_labels();
  Table t;
  auto& cat = t.add_categorical("label", labels);
  auto& num = t.add_numeric("score");
  auto& multi =
      t.add_multiselect("opts", {"a", "b c", " padded ", "new\nline"});
  for (std::size_t i = 0; i < 3 * labels.size(); ++i) {
    if (i % 11 == 5)
      cat.push_missing();
    else
      cat.push(labels[i % labels.size()]);
    if (i % 7 == 3)
      num.push_missing();
    else
      num.push(0.125 * static_cast<double>(i) - 2.0);
    if (i % 9 == 4)
      multi.push_missing();
    else
      multi.push_mask(static_cast<std::uint64_t>(i % 16));  // 0 = none
  }
  return t;
}

TEST(CsvRoundTrip, GnarlyTableRoundTripsBitwise) {
  const Table t = make_gnarly_table();
  const std::string text = to_csv(t);
  const Table back = from_csv(text, t);
  ASSERT_EQ(back.row_count(), t.row_count());
  // Bitwise: re-serializing the parsed table reproduces the exact bytes.
  EXPECT_EQ(to_csv(back), text);
  for (std::size_t i = 0; i < t.row_count(); ++i) {
    ASSERT_EQ(back.categorical("label").is_missing(i),
              t.categorical("label").is_missing(i));
    if (!t.categorical("label").is_missing(i))
      EXPECT_EQ(back.categorical("label").label_at(i),
                t.categorical("label").label_at(i));
    ASSERT_EQ(back.multiselect("opts").is_missing(i),
              t.multiselect("opts").is_missing(i));
    if (!t.multiselect("opts").is_missing(i))
      EXPECT_EQ(back.multiselect("opts").mask_at(i),
                t.multiselect("opts").mask_at(i));
  }
}

TEST(CsvRoundTrip, QuotedWhitespaceSurvivesUnquotedIsTrimmed) {
  Table schema;
  schema.add_categorical("c", {" a ", "a"});
  std::istringstream in("c\n\" a \"\n  a  \n");
  const Table t = read_csv(in, schema);
  ASSERT_EQ(t.row_count(), 2u);
  EXPECT_EQ(t.categorical("c").label_at(0), " a ");  // quoted: verbatim
  EXPECT_EQ(t.categorical("c").label_at(1), "a");    // unquoted: trimmed
}

TEST(CsvRoundTrip, PaddedLabelsAreQuotedOnWrite) {
  Table t;
  t.add_categorical("c", {" padded "}).push(" padded ");
  EXPECT_EQ(to_csv(t), "c\n\" padded \"\n");
}

TEST(CsvRoundTrip, SingleColumnMissingRowsRoundTrip) {
  Table t;
  auto& col = t.add_numeric("x");
  col.push(1.0);
  col.push_missing();
  col.push(2.0);
  const std::string text = to_csv(t);
  EXPECT_EQ(text, "x\n1\n\n2\n");
  const Table back = from_csv(text, t);
  ASSERT_EQ(back.row_count(), 3u);
  EXPECT_TRUE(NumericColumn::is_missing(back.numeric("x").at(1)));
  EXPECT_EQ(to_csv(back), text);
}

TEST(CsvRoundTrip, AnsweredNoneSentinelDistinctFromMissing) {
  Table t;
  auto& col = t.add_multiselect("m", {"a", "b"});
  col.push_mask(0);    // answered, nothing selected
  col.push_missing();  // did not answer
  col.push_labels({"a"});
  const std::string text = to_csv(t);
  EXPECT_EQ(text, "m\n-\n\na\n");
  const Table back = from_csv(text, t);
  ASSERT_EQ(back.row_count(), 3u);
  EXPECT_FALSE(back.multiselect("m").is_missing(0));
  EXPECT_EQ(back.multiselect("m").mask_at(0), 0u);
  EXPECT_TRUE(back.multiselect("m").is_missing(1));
  EXPECT_EQ(back.multiselect("m").mask_at(2), 1u);
}

TEST(CsvRoundTrip, NonFiniteNumericLiteralsRejected) {
  Table schema;
  schema.add_numeric("x");
  for (const char* text :
       {"x\nnan\n", "x\nNAN\n", "x\ninf\n", "x\n-inf\n", "x\nINFINITY\n"}) {
    std::istringstream in(text);
    EXPECT_THROW(read_csv(in, schema), rcr::InvalidInputError) << text;
  }
}

TEST(CsvRoundTrip, DashOptionLabelRejectedAtSchemaBuild) {
  Table t;
  EXPECT_THROW(t.add_multiselect("m", {"a", "-"}), rcr::InvalidInputError);
}

TEST(CsvRoundTrip, StreamingRowReaderHandlesEmbeddedNewlines) {
  const Table t = make_gnarly_table();
  const std::string text = to_csv(t);
  std::istringstream in(text);
  std::size_t rows = 0;
  const std::size_t visited = for_each_csv_row(
      in, t, [&](const Table& row, std::size_t index) {
        ASSERT_EQ(row.row_count(), 1u);
        EXPECT_EQ(index, rows);
        ++rows;
      });
  EXPECT_EQ(visited, t.row_count());
  EXPECT_EQ(rows, t.row_count());
}

TEST(CsvRoundTrip, BlockReaderReassemblesExactly) {
  const Table t = make_gnarly_table();
  const std::string text = to_csv(t);
  std::istringstream in(text);
  Table rebuilt = t.clone_empty();
  std::size_t expected_first = 0;
  const std::size_t rows = for_each_csv_block(
      in, t, 7, [&](const Table& block, std::size_t first_row) {
        EXPECT_EQ(first_row, expected_first);
        expected_first += block.row_count();
        rebuilt.append_rows(block);
      });
  EXPECT_EQ(rows, t.row_count());
  EXPECT_EQ(to_csv(rebuilt), text);
}

// --- Parallel reader ---------------------------------------------------------

TEST(CsvParallel, ByteIdenticalAcrossThreadCounts) {
  const Table t = make_gnarly_table();
  // Repeat the gnarly block until shards are forced even with a small grain.
  Table big = t.clone_empty();
  for (int rep = 0; rep < 40; ++rep) big.append_rows(t);
  const std::string text = to_csv(big);
  const std::string serial = to_csv(from_csv(text, t));
  CsvOptions options;
  options.parallel_shard_bytes = 512;  // force many shards
  for (const std::size_t threads : {0u, 1u, 2u, 8u}) {
    std::unique_ptr<parallel::ThreadPool> pool;
    if (threads > 0) pool = std::make_unique<parallel::ThreadPool>(threads);
    std::istringstream in(text);
    const Table parsed =
        read_csv_parallel(in, t, pool.get(), options);
    EXPECT_EQ(to_csv(parsed), serial) << "threads=" << threads;
  }
}

TEST(CsvParallel, OpenDictionaryMergesInFileOrder) {
  // Unfrozen categorical column: shards intern different label subsets, so
  // the merge must rebuild the serial first-appearance interning order.
  Table schema;
  schema.add_categorical("c");  // open dictionary
  std::string text = "c\n";
  for (int i = 0; i < 400; ++i)
    text += "label_" + std::to_string(i % 23) + "\n";
  CsvOptions options;
  options.parallel_shard_bytes = 64;
  const Table serial = from_csv(text, schema, options);
  parallel::ThreadPool pool(4);
  std::istringstream in(text);
  const Table parsed = read_csv_parallel(in, schema, &pool, options);
  ASSERT_EQ(parsed.row_count(), serial.row_count());
  EXPECT_EQ(parsed.categorical("c").categories(),
            serial.categorical("c").categories());
  EXPECT_EQ(parsed.categorical("c").codes(), serial.categorical("c").codes());
}

TEST(CsvParallel, MalformedInputRaisesSameErrorAsSerial) {
  Table schema;
  schema.add_numeric("x");
  std::string text = "x\n";
  for (int i = 0; i < 200; ++i) text += std::to_string(i) + "\n";
  text += "bogus\n";  // first error, deep in the file
  for (int i = 0; i < 200; ++i) text += "also_bad\n";
  CsvOptions options;
  options.parallel_shard_bytes = 64;
  std::string serial_what;
  try {
    from_csv(text, schema, options);
    FAIL() << "serial read accepted malformed input";
  } catch (const rcr::InvalidInputError& e) {
    serial_what = e.what();
  }
  EXPECT_NE(serial_what.find("bogus"), std::string::npos);
  parallel::ThreadPool pool(4);
  std::istringstream in(text);
  try {
    read_csv_parallel(in, schema, &pool, options);
    FAIL() << "parallel read accepted malformed input";
  } catch (const rcr::InvalidInputError& e) {
    EXPECT_EQ(std::string(e.what()), serial_what);
  }
}

TEST(CsvParallel, HeaderOnlyYieldsEmptyTable) {
  Table schema;
  schema.add_numeric("x");
  for (const char* text : {"x\n", "x"}) {
    std::istringstream in(text);
    const Table parsed = read_csv_parallel(in, schema, nullptr);
    EXPECT_EQ(parsed.row_count(), 0u) << '"' << text << '"';
  }
  std::istringstream empty("");
  EXPECT_THROW(read_csv_parallel(empty, schema, nullptr),
               rcr::InvalidInputError);
}

TEST(CsvParallel, DefaultGrainMatchesSerialOnSmallInputs) {
  // Small inputs collapse to one shard; the result must still be exact.
  const Table t = make_gnarly_table();
  const std::string text = to_csv(t);
  parallel::ThreadPool pool(8);
  std::istringstream in(text);
  const Table parsed = read_csv_parallel(in, t, &pool);
  EXPECT_EQ(to_csv(parsed), to_csv(from_csv(text, t)));
}

}  // namespace
}  // namespace rcr::data
