#include <gtest/gtest.h>

#include <cmath>

#include "stats/special.hpp"
#include "util/error.hpp"

namespace rcr::stats {
namespace {

TEST(LogGammaTest, IntegerFactorials) {
  // Γ(n) = (n-1)!
  EXPECT_NEAR(log_gamma(1.0), 0.0, 1e-12);
  EXPECT_NEAR(log_gamma(2.0), 0.0, 1e-12);
  EXPECT_NEAR(log_gamma(5.0), std::log(24.0), 1e-10);
  EXPECT_NEAR(log_gamma(11.0), std::log(3628800.0), 1e-9);
}

TEST(LogGammaTest, HalfInteger) {
  // Γ(1/2) = sqrt(pi).
  EXPECT_NEAR(log_gamma(0.5), 0.5 * std::log(M_PI), 1e-10);
  // Γ(3/2) = sqrt(pi)/2.
  EXPECT_NEAR(log_gamma(1.5), std::log(std::sqrt(M_PI) / 2.0), 1e-10);
}

TEST(LogGammaTest, LargeArgumentStirlingAgreement) {
  const double x = 150.5;
  const double stirling = (x - 0.5) * std::log(x) - x +
                          0.5 * std::log(2.0 * M_PI) + 1.0 / (12.0 * x);
  EXPECT_NEAR(log_gamma(x) / stirling, 1.0, 1e-8);
}

TEST(LogGammaTest, RejectsNonPositive) {
  EXPECT_THROW(log_gamma(0.0), rcr::Error);
  EXPECT_THROW(log_gamma(-1.0), rcr::Error);
}

TEST(GammaPTest, KnownValues) {
  // P(1, x) = 1 - e^{-x}.
  EXPECT_NEAR(gamma_p(1.0, 2.0), 1.0 - std::exp(-2.0), 1e-12);
  // P(0.5, x) = erf(sqrt(x)).
  EXPECT_NEAR(gamma_p(0.5, 1.0), std::erf(1.0), 1e-10);
  EXPECT_NEAR(gamma_p(3.0, 0.0), 0.0, 1e-15);
}

TEST(GammaPTest, ComplementsSumToOne) {
  for (double a : {0.3, 1.0, 2.5, 10.0, 50.0}) {
    for (double x : {0.1, 1.0, 5.0, 20.0, 80.0}) {
      EXPECT_NEAR(gamma_p(a, x) + gamma_q(a, x), 1.0, 1e-10)
          << "a=" << a << " x=" << x;
    }
  }
}

TEST(BetaIncTest, KnownValues) {
  // I_x(1,1) = x.
  EXPECT_NEAR(beta_inc(1.0, 1.0, 0.3), 0.3, 1e-12);
  // I_x(2,2) = x^2 (3 - 2x).
  EXPECT_NEAR(beta_inc(2.0, 2.0, 0.4), 0.16 * (3.0 - 0.8), 1e-10);
  EXPECT_NEAR(beta_inc(2.0, 3.0, 0.0), 0.0, 1e-15);
  EXPECT_NEAR(beta_inc(2.0, 3.0, 1.0), 1.0, 1e-15);
}

TEST(BetaIncTest, SymmetryIdentity) {
  // I_x(a,b) = 1 - I_{1-x}(b,a).
  for (double x : {0.1, 0.37, 0.62, 0.9}) {
    EXPECT_NEAR(beta_inc(2.5, 4.0, x), 1.0 - beta_inc(4.0, 2.5, 1.0 - x),
                1e-10);
  }
}

TEST(NormalCdfTest, StandardValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-14);
  EXPECT_NEAR(normal_cdf(1.959963985), 0.975, 1e-8);
  EXPECT_NEAR(normal_cdf(-1.0), 0.15865525393145707, 1e-10);
  EXPECT_NEAR(normal_sf(1.0), 0.15865525393145707, 1e-10);
}

TEST(NormalQuantileTest, RoundTripsCdf) {
  for (double p : {0.001, 0.025, 0.1, 0.5, 0.9, 0.975, 0.999}) {
    EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-10) << "p=" << p;
  }
}

TEST(NormalQuantileTest, KnownCriticalValues) {
  EXPECT_NEAR(normal_quantile(0.975), 1.959963985, 1e-7);
  EXPECT_NEAR(normal_quantile(0.95), 1.644853627, 1e-7);
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-10);
}

TEST(NormalQuantileTest, RejectsBoundary) {
  EXPECT_THROW(normal_quantile(0.0), rcr::Error);
  EXPECT_THROW(normal_quantile(1.0), rcr::Error);
}

TEST(Chi2SfTest, KnownCriticalValues) {
  // Classic table: chi2(3.841, 1) = 0.05, chi2(5.991, 2) = 0.05.
  EXPECT_NEAR(chi2_sf(3.841458821, 1.0), 0.05, 1e-7);
  EXPECT_NEAR(chi2_sf(5.991464547, 2.0), 0.05, 1e-7);
  EXPECT_NEAR(chi2_sf(6.634896601, 1.0), 0.01, 1e-7);
  EXPECT_NEAR(chi2_sf(0.0, 4.0), 1.0, 1e-15);
}

TEST(Chi2SfTest, KDofEqualsExponentialForTwo) {
  // chi2 with 2 dof is Exp(1/2): SF(x) = e^{-x/2}.
  for (double x : {0.5, 1.0, 3.0, 10.0})
    EXPECT_NEAR(chi2_sf(x, 2.0), std::exp(-x / 2.0), 1e-10);
}

TEST(StudentTSfTest, MatchesNormalForLargeNu) {
  for (double t : {0.5, 1.0, 2.0}) {
    EXPECT_NEAR(student_t_sf(t, 1e6), normal_sf(t), 1e-5);
  }
}

TEST(StudentTSfTest, KnownValue) {
  // t with 1 dof is Cauchy: SF(1) = 0.25.
  EXPECT_NEAR(student_t_sf(1.0, 1.0), 0.25, 1e-9);
  EXPECT_NEAR(student_t_sf(0.0, 5.0), 0.5, 1e-12);
  EXPECT_NEAR(student_t_sf(-1.0, 1.0), 0.75, 1e-9);
}

TEST(LogChooseTest, SmallCases) {
  EXPECT_NEAR(log_choose(5, 2), std::log(10.0), 1e-10);
  EXPECT_NEAR(log_choose(10, 0), 0.0, 1e-12);
  EXPECT_NEAR(log_choose(10, 10), 0.0, 1e-12);
  EXPECT_NEAR(log_choose(52, 5), std::log(2598960.0), 1e-8);
}

TEST(LogChooseTest, RejectsOutOfRange) {
  EXPECT_THROW(log_choose(3, 4), rcr::Error);
  EXPECT_THROW(log_choose(-1, 0), rcr::Error);
}

}  // namespace
}  // namespace rcr::stats
