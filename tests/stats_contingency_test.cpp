#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/contingency.hpp"
#include "util/error.hpp"

namespace rcr::stats {
namespace {

TEST(ContingencyTest, TotalsAndExpected) {
  Contingency t{{10, 20}, {30, 40}};
  EXPECT_DOUBLE_EQ(t.row_total(0), 30.0);
  EXPECT_DOUBLE_EQ(t.row_total(1), 70.0);
  EXPECT_DOUBLE_EQ(t.col_total(0), 40.0);
  EXPECT_DOUBLE_EQ(t.col_total(1), 60.0);
  EXPECT_DOUBLE_EQ(t.grand_total(), 100.0);
  EXPECT_DOUBLE_EQ(t.expected(0, 0), 12.0);
  EXPECT_DOUBLE_EQ(t.expected(1, 1), 42.0);
}

TEST(ContingencyTest, AddAccumulates) {
  Contingency t(2, 2);
  t.add(0, 1);
  t.add(0, 1, 2.5);
  EXPECT_DOUBLE_EQ(t.at(0, 1), 3.5);
  EXPECT_THROW(t.add(0, 0, -1.0), rcr::Error);
}

TEST(ContingencyTest, RejectsRaggedOrNegative) {
  EXPECT_THROW((Contingency{{1, 2}, {3}}), rcr::Error);
  EXPECT_THROW((Contingency{{1, -2}}), rcr::Error);
}

TEST(ContingencyTest, WithoutEmptyMargins) {
  Contingency t{{5, 0, 3}, {0, 0, 0}, {2, 0, 1}};
  const auto clean = t.without_empty_margins();
  EXPECT_EQ(clean.rows(), 2u);
  EXPECT_EQ(clean.cols(), 2u);
  EXPECT_DOUBLE_EQ(clean.at(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(clean.at(1, 1), 1.0);
}

TEST(ChiSquareTest, KnownTwoByTwo) {
  // Standard textbook example: chi2 = 100 * (10*40-20*30)^2 / (30*70*40*60)
  Contingency t{{10, 20}, {30, 40}};
  const auto r = chi_square_independence(t);
  EXPECT_NEAR(r.statistic, 100.0 * 40000.0 / 5040000.0, 1e-10);  // ~0.7937
  EXPECT_DOUBLE_EQ(r.dof, 1.0);
  EXPECT_NEAR(r.p_value, 0.37293, 1e-4);
  EXPECT_NEAR(r.cramers_v, std::sqrt(r.statistic / 100.0), 1e-12);
}

TEST(ChiSquareTest, IndependentTableScoresZero) {
  // Perfectly proportional rows.
  Contingency t{{10, 20, 30}, {20, 40, 60}};
  const auto r = chi_square_independence(t);
  EXPECT_NEAR(r.statistic, 0.0, 1e-10);
  EXPECT_NEAR(r.p_value, 1.0, 1e-10);
}

TEST(ChiSquareTest, StrongAssociation) {
  Contingency t{{50, 0}, {0, 50}};
  const auto r = chi_square_independence(t);
  EXPECT_NEAR(r.statistic, 100.0, 1e-10);
  EXPECT_LT(r.p_value, 1e-20);
  EXPECT_NEAR(r.cramers_v, 1.0, 1e-12);
}

TEST(ChiSquareTest, RejectsDegenerate) {
  Contingency one_row{{1, 2}};
  EXPECT_THROW(chi_square_independence(one_row), rcr::Error);
  Contingency zero_col{{1, 0}, {1, 0}};
  EXPECT_THROW(chi_square_independence(zero_col), rcr::Error);
}

TEST(GTest, CloseToChiSquareForModerateCounts) {
  Contingency t{{25, 35}, {45, 15}};
  const auto chi = chi_square_independence(t);
  const auto g = g_test_independence(t);
  EXPECT_NEAR(g.statistic, chi.statistic, 0.15 * chi.statistic);
  EXPECT_EQ(g.dof, chi.dof);
}

TEST(GoodnessOfFitTest, FairDie) {
  const std::vector<double> obs = {18, 22, 20, 19, 21, 20};
  const std::vector<double> p(6, 1.0 / 6.0);
  const auto r = chi_square_goodness_of_fit(obs, p);
  EXPECT_NEAR(r.statistic, 0.5, 1e-10);
  EXPECT_DOUBLE_EQ(r.dof, 5.0);
  EXPECT_GT(r.p_value, 0.99);
}

TEST(GoodnessOfFitTest, UnnormalizedProportionsAccepted) {
  const std::vector<double> obs = {30, 70};
  const auto a =
      chi_square_goodness_of_fit(obs, std::vector<double>{1.0, 3.0});
  const auto b =
      chi_square_goodness_of_fit(obs, std::vector<double>{0.25, 0.75});
  EXPECT_NEAR(a.statistic, b.statistic, 1e-12);
}

TEST(FisherTest, KnownTeaTasting) {
  // Fisher's tea-tasting 2x2: [[3,1],[1,3]] — two-sided p ≈ 0.4857.
  const auto r = fisher_exact(3, 1, 1, 3);
  EXPECT_NEAR(r.p_two_sided, 0.485714285, 1e-8);
  EXPECT_NEAR(r.p_greater, 0.242857142, 1e-8);
  EXPECT_NEAR(r.odds_ratio, 9.0, 1e-12);
}

TEST(FisherTest, ExtremeTable) {
  const auto r = fisher_exact(10, 0, 0, 10);
  // p = 2 / C(20,10) for the two-sided test (both extreme tables).
  EXPECT_NEAR(r.p_two_sided, 2.0 / 184756.0, 1e-12);
  EXPECT_LT(r.p_greater, 1e-5);
}

TEST(FisherTest, DegenerateMarginGivesPOne) {
  const auto r = fisher_exact(0, 0, 5, 7);
  EXPECT_DOUBLE_EQ(r.p_two_sided, 1.0);
}

TEST(FisherTest, RejectsNonIntegers) {
  EXPECT_THROW(fisher_exact(1.5, 2, 3, 4), rcr::Error);
  EXPECT_THROW(fisher_exact(-1, 2, 3, 4), rcr::Error);
}

TEST(TwoProportionTest, KnownZ) {
  // p1 = 60/100, p2 = 40/100: z = 0.2 / sqrt(0.5*0.5*(0.02)) ≈ 2.8284.
  const auto r = two_proportion_test(60, 100, 40, 100);
  EXPECT_NEAR(r.z, 2.828427, 1e-5);
  EXPECT_NEAR(r.p_value, 0.004678, 1e-5);
  EXPECT_NEAR(r.diff, 0.2, 1e-12);
  EXPECT_LT(r.diff_ci_lo, 0.2);
  EXPECT_GT(r.diff_ci_hi, 0.2);
}

TEST(TwoProportionTest, IdenticalProportions) {
  const auto r = two_proportion_test(30, 100, 30, 100);
  EXPECT_DOUBLE_EQ(r.z, 0.0);
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);
}

TEST(TwoProportionTest, DegenerateAllSuccesses) {
  const auto r = two_proportion_test(10, 10, 10, 10);
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);  // pooled SE is zero, no evidence
}

TEST(OddsRatioTest, HaldaneCorrectionOnlyWithZeros) {
  EXPECT_DOUBLE_EQ(odds_ratio(10, 20, 30, 40), (10.0 * 40) / (20.0 * 30));
  // With a zero cell the 0.5 correction applies.
  EXPECT_DOUBLE_EQ(odds_ratio(10, 0, 5, 5),
                   (10.5 * 5.5) / (0.5 * 5.5));
}

TEST(MannWhitneyTest, KnownSmallExample) {
  // x clearly below y.
  const std::vector<double> x = {1, 2, 3};
  const std::vector<double> y = {4, 5, 6};
  const auto r = mann_whitney_u(x, y);
  EXPECT_DOUBLE_EQ(r.u, 0.0);
  EXPECT_DOUBLE_EQ(r.effect_size, 0.0);
  EXPECT_LT(r.z, 0.0);
}

TEST(MannWhitneyTest, SymmetricSamples) {
  const std::vector<double> x = {1, 4, 5, 8};
  const std::vector<double> y = {2, 3, 6, 7};
  const auto r = mann_whitney_u(x, y);
  EXPECT_DOUBLE_EQ(r.u, 8.0);  // exactly nx*ny/2
  EXPECT_DOUBLE_EQ(r.effect_size, 0.5);
  EXPECT_NEAR(r.p_value, 1.0, 1e-9);
}

TEST(MannWhitneyTest, HandlesTies) {
  const std::vector<double> x = {1, 2, 2, 3};
  const std::vector<double> y = {2, 3, 3, 4};
  const auto r = mann_whitney_u(x, y);
  EXPECT_GT(r.p_value, 0.0);
  EXPECT_LE(r.p_value, 1.0);
  EXPECT_LT(r.effect_size, 0.5);
}

TEST(HolmTest, KnownAdjustment) {
  const std::vector<double> p = {0.01, 0.04, 0.03, 0.005};
  const auto adj = holm_adjust(p);
  // Sorted: 0.005*4=0.02, 0.01*3=0.03, 0.03*2=0.06, 0.04*1=0.06 (monotone).
  EXPECT_NEAR(adj[3], 0.02, 1e-12);
  EXPECT_NEAR(adj[0], 0.03, 1e-12);
  EXPECT_NEAR(adj[2], 0.06, 1e-12);
  EXPECT_NEAR(adj[1], 0.06, 1e-12);
}

TEST(HolmTest, ClampsAtOne) {
  const auto adj = holm_adjust(std::vector<double>{0.9, 0.8});
  for (double a : adj) EXPECT_LE(a, 1.0);
}

TEST(HolmTest, SingleTestUnchanged) {
  const auto adj = holm_adjust(std::vector<double>{0.037});
  EXPECT_DOUBLE_EQ(adj[0], 0.037);
}

TEST(HolmTest, RejectsInvalidP) {
  EXPECT_THROW(holm_adjust(std::vector<double>{1.2}), rcr::Error);
  EXPECT_THROW(holm_adjust(std::vector<double>{-0.1}), rcr::Error);
}

// Property: chi-square statistic is invariant under row/column swaps.
class ChiSquareSymmetryTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ChiSquareSymmetryTest, TransposeInvariant) {
  const auto [a, b] = GetParam();
  Contingency t{{static_cast<double>(a), 13.0},
                {7.0, static_cast<double>(b)}};
  Contingency tt{{static_cast<double>(a), 7.0},
                 {13.0, static_cast<double>(b)}};
  EXPECT_NEAR(chi_square_independence(t).statistic,
              chi_square_independence(tt).statistic, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Cells, ChiSquareSymmetryTest,
                         ::testing::Combine(::testing::Values(3, 11, 29),
                                            ::testing::Values(5, 17, 42)));

}  // namespace
}  // namespace rcr::stats
